// Malformed-input suite for the file parsers: a fuzz-ish corpus of
// truncated and corrupted ESCHER diagrams and module descriptions.  The
// contract under test: every corrupted input either parses or raises
// std::runtime_error with a line/token diagnostic — never a raw
// std::invalid_argument out of std::stoi, never a crash.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/generator.hpp"
#include "gen/chain.hpp"
#include "netlist/module_library.hpp"
#include "schematic/escher_reader.hpp"
#include "schematic/escher_writer.hpp"

namespace na {
namespace {

/// Parsing must end in a value or a runtime_error; any other exception
/// (std::invalid_argument from an unguarded stoi, bad_alloc from a bogus
/// size, ...) fails the test.
template <typename Fn>
void expect_graceful(Fn&& parse, const std::string& what) {
  try {
    parse();
  } catch (const std::runtime_error&) {
    // diagnostic path: fine
  } catch (const std::exception& e) {
    FAIL() << what << ": escaped non-diagnostic exception " << e.what();
  }
}

const Network& chain() {
  static const Network net = gen::chain_network({});
  return net;
}

std::string routed_chain_escher() {
  static const std::string text = [] {
    GeneratorOptions opt;
    opt.placer.max_part_size = 7;
    opt.placer.max_box_size = 7;
    return to_escher_diagram(generate_diagram(chain(), opt), "chain");
  }();
  return text;
}

// ----- ESCHER diagrams --------------------------------------------------------

TEST(EscherRobustness, TruncatedAtEveryLineBoundary) {
  const std::string good = routed_chain_escher();
  std::vector<size_t> cuts;
  for (size_t i = 0; i < good.size(); ++i) {
    if (good[i] == '\n') cuts.push_back(i);
  }
  ASSERT_GT(cuts.size(), 10u);
  for (size_t cut : cuts) {
    const std::string text = good.substr(0, cut);
    expect_graceful([&] { parse_escher_diagram(chain(), text); },
                    "truncated at byte " + std::to_string(cut));
  }
}

TEST(EscherRobustness, TruncatedMidLine) {
  const std::string good = routed_chain_escher();
  for (size_t cut = 1; cut < good.size(); cut += 17) {
    expect_graceful([&] { parse_escher_diagram(chain(), good.substr(0, cut)); },
                    "truncated at byte " + std::to_string(cut));
  }
}

TEST(EscherRobustness, IntegerFieldsCorrupted) {
  const std::string good = routed_chain_escher();
  // Replace each digit (sampled) with garbage that stoi would have
  // partially accepted or crashed on.
  const std::vector<std::string> poisons = {"x", "12y", "-", "999999999999",
                                            "1.5", ""};
  int corrupted = 0;
  for (size_t i = 0; i < good.size(); i += 31) {
    if (!isdigit(static_cast<unsigned char>(good[i]))) continue;
    for (const std::string& poison : poisons) {
      std::string text = good;
      text.replace(i, 1, poison);
      expect_graceful([&] { parse_escher_diagram(chain(), text); },
                      "poison '" + poison + "' at byte " + std::to_string(i));
      ++corrupted;
    }
  }
  EXPECT_GT(corrupted, 20);
}

TEST(EscherRobustness, TrailingGarbageIntegerIsADiagnosedError) {
  // "5x" must be a one-line diagnostic naming the line, not silently 5.
  const Network& net = chain();
  try {
    parse_escher_diagram(net,
                         "#TUE-ES-871\n"
                         "contact: 0 0 0 0 0 0 5x 3 0 0\n");
    FAIL() << "trailing garbage accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("5x"), std::string::npos) << msg;
  }
}

TEST(EscherRobustness, StrayAndShortRecords) {
  const Network& net = chain();
  const std::vector<std::string> corpus = {
      "#TUE-ES-871\nnode:\n",
      "#TUE-ES-871\nnode: 1 2 3\n",
      "#TUE-ES-871\ncname: foo\n",
      "#TUE-ES-871\noname: bar\n",
      "#TUE-ES-871\ninstname: baz\n",
      "#TUE-ES-871\nsubsys: a b c d e f g h i j k l m n\n",
      "#TUE-ES-871\ncontact: 0 0 0 0 0 0 1 1 0 0\ncname: nosuchterm\n",
      "#TUE-ES-871\ncontact: 0 0 0 0 0 0 1 1 0 0\n",  // pending contact at EOF
      "", "\n\n\n", "#TUE-ES-871",
  };
  for (const std::string& text : corpus) {
    expect_graceful([&] { parse_escher_diagram(net, text); }, text);
  }
}

// ----- module descriptions ----------------------------------------------------

TEST(ModuleLibraryRobustness, CorruptedDescriptions) {
  const std::vector<std::string> corpus = {
      "",                                    // empty
      "module\n",                            // short heading
      "module m\n",                          //
      "module m 4\n",                        //
      "module m 4x 4\n",                     // trailing garbage in size
      "module m 4 4x\n",                     //
      "module m foo bar\n",                  // non-numeric size
      "module m -4 4\n",                     // negative size
      "module m 0 0\n",                      // zero size
      "module m 99999999999999 4\n",         // overflow
      "module m 4 4\nin a\n",                // short terminal record
      "module m 4 4\nin a 0\n",              //
      "module m 4 4\nin a x y\n",            // non-numeric coordinates
      "module m 4 4\nin a 0x 1\n",           // trailing garbage coordinate
      "module m 4 4\nin a 2 2\n",            // terminal off the outline
      "module m 4 4\nbogus a 0 1\n",         // bad terminal type
      "module m 4 4\nin a 0 1 extra\n",      // long record
  };
  for (const std::string& text : corpus) {
    expect_graceful([&] { parse_module_description(text); }, text);
    EXPECT_THROW(parse_module_description(text), std::runtime_error) << text;
  }
}

TEST(ModuleLibraryRobustness, PitchMisalignmentDiagnosed) {
  try {
    parse_module_description("module m 40 45\n", 10);
    FAIL() << "misaligned coordinate accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("pitch"), std::string::npos)
        << e.what();
  }
  // Pitch-corrupted coordinate with trailing garbage: still a diagnostic.
  EXPECT_THROW(parse_module_description("module m 40 4O\n", 10),
               std::runtime_error);
}

TEST(ModuleLibraryRobustness, ValidDescriptionStillParses) {
  const ModuleTemplate t =
      parse_module_description("module m 4 4\nin a 0 1\nout y 4 2\n");
  EXPECT_EQ(t.name, "m");
  ASSERT_EQ(t.terms.size(), 2u);
  EXPECT_EQ(t.terms[1].pos, (geom::Point{4, 2}));
}

}  // namespace
}  // namespace na
