// Tests for the parameterised datapath generator and larger-scale stress
// runs of the full pipeline.
#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "gen/datapath.hpp"
#include "route/net_order.hpp"
#include "schematic/validate.hpp"
#include "sim/simulator.hpp"

namespace na {
namespace {

TEST(DatapathGen, Counts) {
  for (int bits : {1, 4, 8}) {
    const Network net = gen::datapath_network({bits});
    EXPECT_EQ(net.module_count(), 3 * bits + 1);
    EXPECT_EQ(static_cast<int>(net.system_terms().size()), bits + 3);
    EXPECT_TRUE(net.validate().empty()) << bits << " bits";
  }
}

TEST(DatapathGen, RippleCarryChainsThroughAllBits) {
  const Network net = gen::datapath_network({4});
  // cout of bit b drives cin of bit b+1.
  for (int b = 0; b + 1 < 4; ++b) {
    const auto add0 = net.module_by_name("b" + std::to_string(b) + "_add");
    const auto add1 = net.module_by_name("b" + std::to_string(b + 1) + "_add");
    ASSERT_TRUE(add0 && add1);
    const NetId n0 = net.term(*net.term_by_name(*add0, "cout")).net;
    const NetId n1 = net.term(*net.term_by_name(*add1, "cin")).net;
    EXPECT_EQ(n0, n1) << "carry " << b;
  }
}

TEST(DatapathGen, AccumulatorDoublesAndLoads) {
  // acc feeds both adder inputs, so when the write-back mux selects the
  // sum the register doubles (mod 2^bits).  The select is the top bit's
  // qn via the controller (sel = !q2): with q2 = 1 the sum path is taken,
  // with q2 = 0 the data inputs are loaded.
  const Network net = gen::datapath_network({3});
  sim::Simulator s(net);
  s.set_state(*net.module_by_name("b0_reg"), 1);
  s.set_state(*net.module_by_name("b2_reg"), 1);  // q2=1 -> sel=0 -> sum path
  auto acc_value = [&]() {
    int v = 0;
    for (int b = 0; b < 3; ++b) {
      v |= (s.state(*net.module_by_name("b" + std::to_string(b) + "_reg")) & 1)
           << b;
    }
    return v;
  };
  EXPECT_EQ(acc_value(), 5);
  s.tick();
  EXPECT_EQ(acc_value(), 2);  // 2*5 mod 8
  // Now q2 = 0 -> sel = 1 -> the data inputs load.
  s.set_input(*net.term_by_name(kNone, "d0"), true);
  s.set_input(*net.term_by_name(kNone, "d1"), true);
  s.tick();
  EXPECT_EQ(acc_value(), 3);
}

class DatapathScale : public ::testing::TestWithParam<int> {};

TEST_P(DatapathScale, GeneratesValidAtSize) {
  const int bits = GetParam();
  const Network net = gen::datapath_network({bits});
  GeneratorOptions opt;
  opt.placer.max_part_size = 6;
  opt.placer.max_box_size = 4;
  opt.placer.max_connections = 12;
  opt.router.margin = 8;
  opt.router.order_criterion = static_cast<int>(NetOrderCriterion::LongestFirst);
  GeneratorResult result;
  const Diagram dia = generate_diagram(net, opt, &result);
  EXPECT_EQ(result.route.nets_failed, 0) << bits << " bits";
  const auto problems = validate_diagram(dia, true);
  for (const auto& p : problems) ADD_FAILURE() << p;
}

INSTANTIATE_TEST_SUITE_P(Bits, DatapathScale, ::testing::Values(2, 5, 9, 13),
                         [](const auto& info) {
                           return "bits" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace na
