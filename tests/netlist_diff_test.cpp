// Unit tests for the structural netlist diff and the NetworkEditor edit
// scripts — the foundation the incremental regeneration engine stands on.
#include <gtest/gtest.h>

#include "gen/chain.hpp"
#include "gen/datapath.hpp"
#include "incremental/edit.hpp"
#include "incremental/netlist_diff.hpp"

namespace na {
namespace {

Network two_module_net() {
  Network net;
  const ModuleId a = net.add_module("a", "buf", {4, 4});
  net.add_terminal(a, "o", TermType::Out, {4, 2});
  const ModuleId b = net.add_module("b", "buf", {4, 4});
  net.add_terminal(b, "i", TermType::In, {0, 2});
  const NetId n = net.add_net("ab");
  net.connect(n, *net.term_by_name(a, "o"));
  net.connect(n, *net.term_by_name(b, "i"));
  return net;
}

TEST(NetlistDiff, IdenticalNetworksDiffEmpty) {
  const Network before = gen::chain_network({});
  const Network after = gen::chain_network({});
  const NetlistDiff d = diff_networks(before, after);
  EXPECT_TRUE(d.empty());
  for (ModuleId m = 0; m < after.module_count(); ++m) {
    EXPECT_EQ(d.module_to_old[m], m);
  }
  for (NetId n = 0; n < after.net_count(); ++n) {
    EXPECT_EQ(d.net_to_old[n], n);
  }
}

TEST(NetlistDiff, EditorRoundTripIsIdentity) {
  const Network base = gen::datapath_network({4});
  const Network rebuilt = NetworkEditor(base).build();
  EXPECT_TRUE(diff_networks(base, rebuilt).empty());
  EXPECT_EQ(rebuilt.module_count(), base.module_count());
  EXPECT_EQ(rebuilt.net_count(), base.net_count());
  EXPECT_EQ(rebuilt.term_count(), base.term_count());
}

TEST(NetlistDiff, AddedModuleAndNet) {
  const Network before = two_module_net();
  NetworkEditor ed(before);
  ed.add_module("c", "buf", {4, 4});
  ed.add_module_terminal("c", "i", TermType::In, {0, 2});
  ed.connect("tap", "a", "o");  // existing terminal: "ab" keeps b only
  ed.connect("tap", "c", "i");
  const Network after = ed.build();

  const NetlistDiff d = diff_networks(before, after);
  ASSERT_EQ(d.added_modules.size(), 1u);
  EXPECT_EQ(after.module(d.added_modules[0]).name, "c");
  ASSERT_EQ(d.added_nets.size(), 1u);
  EXPECT_EQ(after.net(d.added_nets[0]).name, "tap");
  // "ab" lost a terminal => changed, not removed.
  ASSERT_EQ(d.changed_nets.size(), 1u);
  EXPECT_EQ(after.net(d.changed_nets[0]).name, "ab");
  EXPECT_TRUE(d.removed_modules.empty());
  EXPECT_TRUE(d.changed_modules.empty());
}

TEST(NetlistDiff, RemovedModuleRemovesItsTerminalsFromNets) {
  const Network before = two_module_net();
  NetworkEditor ed(before);
  ed.remove_module("b");
  const Network after = ed.build();

  const NetlistDiff d = diff_networks(before, after);
  ASSERT_EQ(d.removed_modules.size(), 1u);
  EXPECT_EQ(before.module(d.removed_modules[0]).name, "b");
  // "ab" keeps a's terminal, so it survives — as a changed net.
  ASSERT_EQ(d.changed_nets.size(), 1u);
  EXPECT_EQ(after.net(d.changed_nets[0]).name, "ab");
  EXPECT_EQ(after.net(d.changed_nets[0]).terms.size(), 1u);
  EXPECT_TRUE(d.removed_nets.empty());

  // Dropping a's terminal too removes the net outright.
  NetworkEditor ed2(before);
  ed2.remove_module("b");
  ed2.disconnect("a", "o");
  const NetlistDiff d2 = diff_networks(before, ed2.build());
  ASSERT_EQ(d2.removed_nets.size(), 1u);
  EXPECT_EQ(before.net(d2.removed_nets[0]).name, "ab");
}

TEST(NetlistDiff, RepinnedTerminalChangesModuleNotNet) {
  const Network before = two_module_net();
  NetworkEditor ed(before);
  ed.move_terminal("a", "o", {4, 3});
  const Network after = ed.build();

  const NetlistDiff d = diff_networks(before, after);
  ASSERT_EQ(d.changed_modules.size(), 1u);
  EXPECT_EQ(after.module(d.changed_modules[0]).name, "a");
  EXPECT_TRUE(d.changed_nets.empty()) << "membership did not change";
  EXPECT_TRUE(d.added_modules.empty());
  EXPECT_TRUE(d.removed_modules.empty());
}

TEST(NetlistDiff, ResizeChangesModule) {
  const Network before = two_module_net();
  NetworkEditor ed(before);
  ed.resize_module("b", {6, 4});
  const Network after = ed.build();
  const NetlistDiff d = diff_networks(before, after);
  ASSERT_EQ(d.changed_modules.size(), 1u);
  EXPECT_EQ(after.module(d.changed_modules[0]).name, "b");
}

TEST(NetlistDiff, ReconnectChangesBothNets) {
  Network before = two_module_net();
  {  // third module so both nets survive the reconnect
    const ModuleId c = before.add_module("c", "buf", {4, 4});
    before.add_terminal(c, "i", TermType::In, {0, 2});
    before.add_terminal(c, "i2", TermType::In, {0, 3});
    const NetId n = before.add_net("ac");
    before.connect(n, *before.term_by_name(c, "i"));
    before.connect(*before.net_by_name("ab"), *before.term_by_name(c, "i2"));
  }
  NetworkEditor ed(before);
  ed.connect("ac", "b", "i");  // b:i moves from "ab" to "ac"
  const Network after = ed.build();

  const NetlistDiff d = diff_networks(before, after);
  std::vector<std::string> changed;
  for (NetId n : d.changed_nets) changed.push_back(after.net(n).name);
  EXPECT_EQ(changed, (std::vector<std::string>{"ab", "ac"}));
  EXPECT_TRUE(d.changed_modules.empty());
}

TEST(NetlistDiff, IdMapsSurviveReordering) {
  // Same structure built in a different declaration order: everything maps,
  // nothing is added or removed.
  Network before = two_module_net();
  Network after;
  const ModuleId b = after.add_module("b", "buf", {4, 4});
  after.add_terminal(b, "i", TermType::In, {0, 2});
  const ModuleId a = after.add_module("a", "buf", {4, 4});
  after.add_terminal(a, "o", TermType::Out, {4, 2});
  const NetId n = after.add_net("ab");
  after.connect(n, *after.term_by_name(a, "o"));
  after.connect(n, *after.term_by_name(b, "i"));

  const NetlistDiff d = diff_networks(before, after);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(after.module(0).name, "b");
  EXPECT_EQ(d.module_to_old[0], 1);  // "b" was module 1 before
  EXPECT_EQ(d.module_to_new[0], 1);  // "a" is module 1 now
}

}  // namespace
}  // namespace na
