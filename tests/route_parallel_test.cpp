// Tests for the speculative parallel routing driver and its supporting
// machinery: byte-identical determinism across thread counts (the central
// contract of parallel_route_all), the re-speculation retry pipeline, the
// speculation-effectiveness counters, search-workspace reuse, windowed
// searches and the work-stealing pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "gen/life.hpp"
#include "netlist/module_library.hpp"
#include "route/dijkstra.hpp"
#include "route/net_order.hpp"
#include "route/net_task.hpp"
#include "route/parallel_route.hpp"
#include "route/router.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

// ----- fixtures ---------------------------------------------------------------

/// The LIFE network hand-placed — 27 modules / 222 nets, the paper's
/// figure 6.6 workload and the densest routing job in the repo.
Diagram placed_life() {
  static const Network& net = []() -> const Network& {
    static Network n = gen::life_network();
    return n;
  }();
  Diagram dia(net);
  gen::life_hand_placement(dia);
  return dia;
}

RouterOptions life_options(int threads) {
  RouterOptions opt;
  opt.margin = 12;
  opt.order_criterion = static_cast<int>(NetOrderCriterion::LongestFirst);
  opt.threads = threads;
  return opt;
}

/// Every observable per-net routing artefact.
struct RoutedSnapshot {
  std::vector<std::vector<std::vector<geom::Point>>> polylines;
  std::vector<bool> routed;

  explicit RoutedSnapshot(const Diagram& dia) {
    for (NetId n = 0; n < dia.network().net_count(); ++n) {
      polylines.push_back(dia.route(n).polylines);
      routed.push_back(dia.route(n).routed);
    }
  }
  friend bool operator==(const RoutedSnapshot&, const RoutedSnapshot&) = default;
};

void expect_reports_equal(const RouteReport& a, const RouteReport& b) {
  EXPECT_EQ(a.nets_routed, b.nets_routed);
  EXPECT_EQ(a.nets_failed, b.nets_failed);
  EXPECT_EQ(a.connections_made, b.connections_made);
  EXPECT_EQ(a.connections_failed, b.connections_failed);
  EXPECT_EQ(a.retried_connections, b.retried_connections);
  EXPECT_EQ(a.total_expansions, b.total_expansions);
  EXPECT_EQ(a.failed_nets, b.failed_nets);
}

// ----- determinism: the parallel driver's central contract ----------------------

TEST(ParallelRoute, ByteIdenticalToSequentialOnLife) {
  Diagram seq = placed_life();
  const RouteReport r1 = route_all(seq, life_options(1));

  Diagram par = placed_life();
  const RouteReport r4 = route_all(par, life_options(4));

  expect_reports_equal(r1, r4);
  EXPECT_TRUE(RoutedSnapshot(seq) == RoutedSnapshot(par));
  EXPECT_TRUE(validate_diagram(par, true).empty());
  EXPECT_GT(r1.nets_routed, 200);  // the workload actually exercised routing
}

TEST(ParallelRoute, ThreadCountsAgree) {
  // 2, 3 and 8 threads must all match each other (and, by the test above,
  // the sequential result).
  Diagram base = placed_life();
  const RouteReport r2 = route_all(base, life_options(2));
  const RoutedSnapshot snap2(base);
  for (int threads : {3, 8}) {
    Diagram dia = placed_life();
    const RouteReport r = route_all(dia, life_options(threads));
    expect_reports_equal(r2, r);
    EXPECT_TRUE(snap2 == RoutedSnapshot(dia)) << "threads=" << threads;
  }
}

TEST(ParallelRoute, LeeEngineDeterministic) {
  RouterOptions opt = life_options(1);
  opt.engine = Engine::Lee;
  Diagram seq = placed_life();
  const RouteReport r1 = route_all(seq, opt);
  opt.threads = 4;
  Diagram par = placed_life();
  const RouteReport r4 = route_all(par, opt);
  expect_reports_equal(r1, r4);
  EXPECT_TRUE(RoutedSnapshot(seq) == RoutedSnapshot(par));
}

TEST(ParallelRoute, SpeculationStatsAddUp) {
  Diagram dia = placed_life();
  ParallelRouteStats stats;
  parallel_route_all(dia, life_options(4), 4, &stats);
  EXPECT_EQ(stats.nets_speculated, stats.commits_clean + stats.reroutes);
  EXPECT_GT(stats.nets_speculated, 200);
  // Nets on a schematic plane are mostly local, so the bulk of the
  // speculations must survive validation or the parallel driver is useless.
  EXPECT_GT(stats.commits_clean, stats.nets_speculated / 2);
}

// ----- re-speculation of invalidated nets ---------------------------------------

TEST(Respeculation, StaleValidationCursorWouldMissConflicts) {
  // Unit regression for the exactness check shared by the commit step and
  // the re-speculation scan.  A re-speculated outcome carries a
  // validated_to cursor; if that cursor ever ran ahead of the entries
  // actually checked, the conflict in journal[1] below would be skipped
  // and a stale path committed.
  detail::ObservedMask obs;
  obs.reset(geom::Rect{{0, 0}, {10, 10}});
  obs.mark({3, 3});
  obs.mark_segment({5, 1}, {5, 6});
  std::vector<std::vector<detail::CellOp>> journal(4);
  journal[0] = {{{9, 9}, detail::CellOp::kSetH, 7}};  // unobserved: harmless
  journal[1] = {{{5, 4}, detail::CellOp::kSetV, 8}};  // observed cell
  journal[3] = {{{0, 0}, detail::CellOp::kClearClaim, 9}};
  EXPECT_TRUE(detail::speculation_exact(obs, journal, 0, 1));
  EXPECT_FALSE(detail::speculation_exact(obs, journal, 0, 4));
  EXPECT_FALSE(detail::speculation_exact(obs, journal, 1, 2));
  // The hazard the cursor invariant guards against: validating only past
  // the conflicting entry would accept the stale speculation.
  EXPECT_TRUE(detail::speculation_exact(obs, journal, 2, 4));
}

/// Sets NA_PAR_FORCE_RESPEC for one test: every first outcome is
/// re-dispatched once, making the retry pipeline deterministic to reach
/// on workloads where organic invalidation timing varies.
struct ForceRespecEnv {
  ForceRespecEnv() { ::setenv("NA_PAR_FORCE_RESPEC", "1", 1); }
  ~ForceRespecEnv() { ::unsetenv("NA_PAR_FORCE_RESPEC"); }
};

TEST(Respeculation, ForcedRespeculationStaysByteIdentical) {
  // The satellite regression: a re-speculated net validates against a
  // fresher epoch via its validated_to cursor; forcing re-dispatch of
  // every outcome exercises that path for all ~200 nets and the result
  // must still be byte-identical to the sequential route.
  Diagram seq = placed_life();
  const RouteReport r1 = route_all(seq, life_options(1));
  ForceRespecEnv force;
  Diagram par = placed_life();
  ParallelRouteStats stats;
  const RouteReport r4 =
      parallel_route_all(par, life_options(4), 4, &stats);
  expect_reports_equal(r1, r4);
  EXPECT_TRUE(RoutedSnapshot(seq) == RoutedSnapshot(par));
  EXPECT_GT(stats.nets_respeculated, 0);
  // Counter algebra: every committed position is exactly one of
  // clean/reroute, and the respec_* splits count the subset of those
  // whose last attempt was a re-speculation.
  EXPECT_EQ(stats.nets_speculated, stats.commits_clean + stats.reroutes);
  EXPECT_LE(stats.respec_hits, stats.commits_clean);
  EXPECT_LE(stats.respec_stale, stats.reroutes);
  EXPECT_LE(stats.respec_hits + stats.respec_stale, stats.nets_respeculated);
  // A forced re-speculation of an already-valid outcome re-routes against
  // a fresher epoch, so most re-dispatches must survive validation.
  EXPECT_GT(stats.respec_hits, 0);
}

TEST(Respeculation, ByteIdenticalAcrossBudgets) {
  Diagram seq = placed_life();
  const RouteReport r1 = route_all(seq, life_options(1));
  const RoutedSnapshot base(seq);
  for (int budget : {0, 1, 8}) {
    Diagram par = placed_life();
    RouterOptions opt = life_options(4);
    opt.respec_budget = budget;
    const RouteReport r = route_all(par, opt);
    expect_reports_equal(r1, r);
    EXPECT_TRUE(base == RoutedSnapshot(par)) << "respec_budget=" << budget;
  }
}

TEST(Respeculation, BudgetZeroDisablesRespeculation) {
  ForceRespecEnv force;
  Diagram par = placed_life();
  RouterOptions opt = life_options(4);
  opt.respec_budget = 0;
  ParallelRouteStats stats;
  parallel_route_all(par, opt, 4, &stats);
  EXPECT_EQ(stats.nets_respeculated, 0);
  EXPECT_EQ(stats.respec_hits, 0);
  EXPECT_EQ(stats.respec_stale, 0);
}

TEST(Respeculation, UrgentLaneRunsBeforeQueuedWork) {
  // Re-speculations ride the pool's urgent lane: with the single worker
  // parked on the gate task, tasks submitted later via submit_urgent must
  // still run before the earlier plain submissions, in order.
  ThreadPool pool(1);
  std::mutex m;
  std::condition_variable cv;
  bool go = false;
  std::vector<int> ran;
  pool.submit([&] {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return go; });
  });
  for (int i = 0; i < 3; ++i) {
    pool.submit([&, i] {
      std::lock_guard lock(m);
      ran.push_back(i);
    });
  }
  pool.submit_urgent([&] {
    std::lock_guard lock(m);
    ran.push_back(100);
  });
  pool.submit_urgent([&] {
    std::lock_guard lock(m);
    ran.push_back(101);
  });
  {
    std::lock_guard lock(m);
    go = true;
  }
  cv.notify_all();
  pool.wait_idle();
  ASSERT_EQ(ran.size(), 5u);
  EXPECT_EQ(ran[0], 100);
  EXPECT_EQ(ran[1], 101);
  EXPECT_EQ(ran[2], 0);
}

// ----- workspace reuse ----------------------------------------------------------

/// A small plane with a wall that forces a bend, so the searches are not
/// trivial straight lines.
RoutingGrid walled_grid() {
  RoutingGrid grid({{0, 0}, {20, 12}});
  grid.block_rect({{8, 0}, {10, 8}});
  return grid;
}

SearchProblem across_problem(geom::Point from, geom::Point to) {
  SearchProblem prob;
  prob.net = 0;
  prob.starts = {{from, std::nullopt}};
  prob.target = SearchTarget{to, std::nullopt};
  return prob;
}

TEST(SearchWorkspace, ReuseMatchesFreshSearches) {
  const RoutingGrid grid = walled_grid();
  const std::vector<std::pair<geom::Point, geom::Point>> cases = {
      {{1, 1}, {18, 1}}, {{2, 10}, {17, 2}}, {{1, 4}, {19, 11}}};
  detail::SearchWorkspace shared;
  for (const auto& [from, to] : cases) {
    const SearchProblem prob = across_problem(from, to);
    const auto fresh =
        detail::grid_search(grid, prob, detail::CostMode::BendsCrossingsLength);
    const auto reused = detail::grid_search(
        grid, prob, detail::CostMode::BendsCrossingsLength, &shared);
    ASSERT_TRUE(fresh.has_value());
    ASSERT_TRUE(reused.has_value());
    EXPECT_EQ(fresh->path, reused->path);
    EXPECT_EQ(fresh->expansions, reused->expansions);
    EXPECT_EQ(fresh->cost.bends, reused->cost.bends);
    EXPECT_EQ(fresh->cost.crossings, reused->cost.crossings);
    EXPECT_EQ(fresh->cost.length, reused->cost.length);
  }
}

TEST(SearchWorkspace, ObservedMaskCoversPath) {
  const RoutingGrid grid = walled_grid();
  const SearchProblem prob = across_problem({1, 1}, {18, 1});
  detail::SearchWorkspace ws;
  detail::ObservedMask observed;
  observed.reset(grid.area());
  const auto res = detail::grid_search(
      grid, prob, detail::CostMode::BendsCrossingsLength, &ws, &observed);
  ASSERT_TRUE(res.has_value());
  // Every point of the found path was read, so a commit touching any of
  // them must invalidate the speculation.
  for (const geom::Point& p : res->path) {
    EXPECT_TRUE(observed.covers(p)) << p.x << "," << p.y;
  }
  // Cells inside the wall were never read (only their free boundary was).
  EXPECT_FALSE(observed.covers({9, 4}));
}

// ----- windowed searches --------------------------------------------------------

TEST(WindowedSearch, WindowBlocksOutsidePoints) {
  const RoutingGrid grid = walled_grid();
  SearchProblem prob = across_problem({1, 1}, {18, 1});
  prob.window = geom::Rect{{0, 0}, {6, 12}};  // excludes the target
  EXPECT_FALSE(
      detail::grid_search(grid, prob, detail::CostMode::BendsCrossingsLength)
          .has_value());
  prob.window = grid.area();  // window covering everything changes nothing
  const auto windowed =
      detail::grid_search(grid, prob, detail::CostMode::BendsCrossingsLength);
  prob.window.reset();
  const auto full =
      detail::grid_search(grid, prob, detail::CostMode::BendsCrossingsLength);
  ASSERT_TRUE(windowed.has_value());
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(windowed->path, full->path);
}

TEST(WindowedSearch, DriverFallsBackToFullPlane) {
  // A detour forced far outside the endpoint hull: the windowed first
  // attempt fails, the full-plane retry must still connect the net.
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  lib.instantiate(net, "buf", "b1");
  net.add_module("wall", "", {2, 40});
  const NetId n = net.add_net("n0");
  net.connect(n, *net.term_by_name(0, "y"));
  net.connect(n, *net.term_by_name(1, "a"));
  Diagram dia(net);
  dia.place_module(0, {0, 18});
  dia.place_module(1, {20, 18});
  dia.place_module(2, {9, 0});  // wall spanning y=0..40 between them
  RouterOptions opt;
  opt.margin = 4;
  opt.window_slack = 1;
  const RouteReport r = route_all(dia, opt);
  EXPECT_EQ(r.nets_routed, 1);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

TEST(WindowedSearch, LifeStillRoutesEverything) {
  Diagram baseline = placed_life();
  const RouteReport base = route_all(baseline, life_options(1));
  Diagram dia = placed_life();
  RouterOptions opt = life_options(1);
  opt.window_slack = 8;
  const RouteReport r = route_all(dia, opt);
  // Windowed routing may pick different (window-local) optima but must not
  // lose nets: the full-plane fallback guarantees completeness.
  EXPECT_EQ(r.nets_routed, base.nets_routed);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

// ----- the thread pool ----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WorkerIndexAddressesPerWorkerState) {
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  std::atomic<int> seen_mask{0};
  for (int i = 0; i < 300; ++i) {
    pool.submit([&] {
      const int idx = ThreadPool::worker_index();
      if (idx < 0 || idx >= 3) bad.fetch_add(1);
      else seen_mask.fetch_or(1 << idx);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    });
  }
  pool.wait_idle();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(seen_mask.load(), 0b111);  // stealing spread work to all workers
  EXPECT_EQ(ThreadPool::worker_index(), -1);  // off-pool threads
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  pool.submit([] {});
  pool.wait_idle();
}

}  // namespace
}  // namespace na
