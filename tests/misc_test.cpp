// Deep-coverage tests for corners not exercised elsewhere: the remaining
// standard-cell simulator behaviours, stats formatting, write_network
// shapes, router edge cases, and the -S engine through the option parser.
#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "core/options.hpp"
#include "gen/facing.hpp"
#include "netlist/module_library.hpp"
#include "netlist/netlist_io.hpp"
#include "schematic/metrics.hpp"
#include "schematic/validate.hpp"
#include "sim/simulator.hpp"

namespace na {
namespace {

// --- simulator: remaining standard cells --------------------------------------

struct Fixture {
  Network net;
  ModuleId m = kNone;
  std::vector<TermId> ins;
};

Fixture wire_up(const char* cell, std::initializer_list<const char*> in_names) {
  Fixture f;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  f.m = lib.instantiate(f.net, cell, "u");
  for (const char* name : in_names) {
    const TermId st = f.net.add_system_terminal(std::string("i_") + name,
                                                TermType::In);
    const NetId n = f.net.get_or_add_net(std::string("n_") + name);
    f.net.connect(n, st);
    f.net.connect(n, *f.net.term_by_name(f.m, name));
    f.ins.push_back(st);
  }
  return f;
}

TEST(SimCells, Mux2SelectsBByS) {
  Fixture f = wire_up("mux2", {"a", "b", "s"});
  sim::Simulator s(f.net);
  s.set_input(f.ins[0], true);   // a
  s.set_input(f.ins[1], false);  // b
  s.set_input(f.ins[2], false);  // s=0 -> a
  s.settle();
  EXPECT_TRUE(s.input(f.m, "a"));
  s.output(f.m, "y", false);  // will be overwritten by settle
  s.settle();
  // read through the behaviour: y has no net; check via value of output term
  // by attaching one:
  const NetId ny = f.net.add_net("ny");
  f.net.connect(ny, *f.net.term_by_name(f.m, "y"));
  sim::Simulator s2(f.net);
  s2.set_input(f.ins[0], true);
  s2.set_input(f.ins[1], false);
  s2.set_input(f.ins[2], false);
  s2.settle();
  EXPECT_TRUE(s2.value(ny));  // selects a
  s2.set_input(f.ins[2], true);
  s2.settle();
  EXPECT_FALSE(s2.value(ny));  // selects b
}

TEST(SimCells, AdderTruthTable) {
  Fixture f = wire_up("adder", {"a", "b", "cin"});
  const NetId ns = f.net.get_or_add_net("ns");
  f.net.connect(ns, *f.net.term_by_name(f.m, "s"));
  const NetId nc = f.net.get_or_add_net("nc");
  f.net.connect(nc, *f.net.term_by_name(f.m, "cout"));
  sim::Simulator s(f.net);
  for (int v = 0; v < 8; ++v) {
    const bool a = v & 1, b = v & 2, cin = v & 4;
    s.set_input(f.ins[0], a);
    s.set_input(f.ins[1], b);
    s.set_input(f.ins[2], cin);
    s.settle();
    const int sum = (a ? 1 : 0) + (b ? 1 : 0) + (cin ? 1 : 0);
    EXPECT_EQ(s.value(ns), (sum & 1) != 0) << "v=" << v;
    EXPECT_EQ(s.value(nc), sum >= 2) << "v=" << v;
  }
}

TEST(SimCells, And3BufInv) {
  Fixture f = wire_up("and3", {"a", "b", "c"});
  const NetId ny = f.net.get_or_add_net("ny");
  f.net.connect(ny, *f.net.term_by_name(f.m, "y"));
  sim::Simulator s(f.net);
  s.set_input(f.ins[0], true);
  s.set_input(f.ins[1], true);
  s.set_input(f.ins[2], true);
  s.settle();
  EXPECT_TRUE(s.value(ny));
  s.set_input(f.ins[1], false);
  s.settle();
  EXPECT_FALSE(s.value(ny));
}

TEST(SimCells, CtrlOutputsAreFunctionsOfInputs) {
  Fixture f = wire_up("ctrl", {"i0", "i1"});
  std::vector<NetId> outs;
  for (int c = 0; c < 7; ++c) {
    const NetId n = f.net.get_or_add_net("nc" + std::to_string(c));
    f.net.connect(n, *f.net.term_by_name(f.m, ("c" + std::to_string(c)).c_str()));
    outs.push_back(n);
  }
  sim::Simulator s(f.net);
  s.set_input(f.ins[0], true);
  s.set_input(f.ins[1], false);
  s.settle();
  EXPECT_TRUE(s.value(outs[0]));   // c0 = i0
  EXPECT_FALSE(s.value(outs[1]));  // c1 = i1
  EXPECT_TRUE(s.value(outs[2]));   // c2 = i0 xor i1
  EXPECT_FALSE(s.value(outs[3]));  // c3 = i0 and i1
  EXPECT_TRUE(s.value(outs[4]));   // c4 = i0 or i1
  EXPECT_FALSE(s.value(outs[5]));  // c5 = !i0
  EXPECT_TRUE(s.value(outs[6]));   // c6 = !i1
}

// --- metrics / stats -----------------------------------------------------------

TEST(Stats, SummaryMentionsEverything) {
  DiagramStats s;
  s.modules = 3;
  s.nets = 5;
  s.routed = 4;
  s.unrouted = 1;
  s.wire_length = 42;
  s.bends = 7;
  s.crossings = 2;
  s.branch_points = 1;
  s.width = 10;
  s.height = 20;
  s.flow_violations = 3;
  const std::string text = s.summary();
  for (const char* frag : {"3 modules", "5 nets", "4 routed", "1 unrouted",
                           "len=42", "bends=7", "cross=2", "branch=1",
                           "area=10x20", "flow-viol=3"}) {
    EXPECT_NE(text.find(frag), std::string::npos) << frag;
  }
}

// --- netlist writer shapes --------------------------------------------------------

TEST(WriteNetwork, EmptyIoFileWhenNoSystemTerms) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  const NetlistFiles files = write_network(net);
  EXPECT_TRUE(files.io_file.empty());
  EXPECT_NE(files.call_file.find("b0 buf"), std::string::npos);
}

TEST(WriteNetwork, RootRecordsForSystemTerminals) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  const TermId st = net.add_system_terminal("x", TermType::In);
  const NetId n = net.add_net("n0");
  net.connect(n, st);
  net.connect(n, *net.term_by_name(0, "a"));
  const NetlistFiles files = write_network(net);
  EXPECT_NE(files.netlist_file.find("n0 root x"), std::string::npos);
  EXPECT_NE(files.io_file.find("x in"), std::string::npos);
}

// --- router edge cases --------------------------------------------------------------

TEST(RouteAll, NetWithSingleTerminalSkipped) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  const NetId n = net.add_net("half");
  net.connect(n, *net.term_by_name(0, "y"));
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  const RouteReport r = route_all(dia);
  EXPECT_EQ(r.nets_routed, 0);
  EXPECT_EQ(r.nets_failed, 0);  // not a routable net: neither bucket
}

TEST(RouteAll, TwoTerminalsOnOneModule) {
  // A feedback net connecting two terminals of the same module must route
  // around (or beside) the module body.
  Network net;
  const ModuleId m = net.add_module("m", "", {6, 4});
  const TermId a = net.add_terminal(m, "out", TermType::Out, {6, 1});
  const TermId b = net.add_terminal(m, "in", TermType::In, {6, 3});
  const NetId n = net.add_net("loop");
  net.connect(n, a);
  net.connect(n, b);
  Diagram dia(net);
  dia.place_module(m, {0, 0});
  const RouteReport r = route_all(dia);
  EXPECT_EQ(r.nets_routed, 1);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

TEST(RouteAll, SegmentEngineViaOptions) {
  GeneratorOptions opt;
  parse_generator_args({"-S"}, opt);
  EXPECT_EQ(opt.router.engine, Engine::SegmentExpansion);
  const gen::FacingOptions fopt{2, 4, 6, 3};
  const Network net = gen::facing_pairs(fopt);
  Diagram dia(net);
  gen::facing_placement(dia, fopt);
  const RouteReport r = route_all(dia, opt.router);
  EXPECT_EQ(r.nets_failed, 0);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

TEST(RouteAll, RouteFirstOverridesOrder) {
  const gen::FacingOptions fopt{1, 4, 6, 2};
  const Network net = gen::facing_pairs(fopt);
  Diagram dia(net);
  gen::facing_placement(dia, fopt);
  RouterOptions opt;
  opt.route_first = {3, 2};  // still routes everything, in a custom order
  const RouteReport r = route_all(dia, opt);
  EXPECT_EQ(r.nets_failed, 0);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

// --- rotated placement end to end ------------------------------------------------

TEST(Pipeline, RotatedModulesRouteCleanly) {
  // Force rotations: a chain where inputs sit on odd sides.
  Network net;
  const ModuleId a = net.add_module("a", "", {4, 4});
  net.add_terminal(a, "y", TermType::Out, {2, 4});  // output on top
  const ModuleId b = net.add_module("b", "", {4, 4});
  net.add_terminal(b, "in", TermType::In, {2, 0});  // input on bottom
  net.add_terminal(b, "y", TermType::Out, {4, 2});
  const ModuleId c = net.add_module("c", "", {4, 4});
  net.add_terminal(c, "in", TermType::In, {4, 2});  // input on the right
  NetId n = net.add_net("ab");
  net.connect(n, *net.term_by_name(a, "y"));
  net.connect(n, *net.term_by_name(b, "in"));
  n = net.add_net("bc");
  net.connect(n, *net.term_by_name(b, "y"));
  net.connect(n, *net.term_by_name(c, "in"));
  GeneratorOptions opt;
  opt.placer.max_part_size = 3;
  opt.placer.max_box_size = 3;
  GeneratorResult result;
  const Diagram dia = generate_diagram(net, opt, &result);
  EXPECT_EQ(result.route.nets_failed, 0);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
  // b and c were rotated so their inputs face left.
  EXPECT_EQ(dia.term_facing(*net.term_by_name(b, "in")), geom::Side::Left);
  EXPECT_EQ(dia.term_facing(*net.term_by_name(c, "in")), geom::Side::Left);
}

}  // namespace
}  // namespace na
