// Unit tests for the routing grid: obstacle bookkeeping, passability,
// crossing/turn rules, claimpoints and grid construction from diagrams.
#include <gtest/gtest.h>

#include "netlist/module_library.hpp"
#include "schematic/grid.hpp"

namespace na {
namespace {

TEST(RoutingGrid, Bounds) {
  RoutingGrid g({{0, 0}, {9, 9}});
  EXPECT_TRUE(g.in_bounds({0, 0}));
  EXPECT_TRUE(g.in_bounds({9, 9}));
  EXPECT_FALSE(g.in_bounds({10, 0}));
  EXPECT_FALSE(g.in_bounds({-1, 5}));
  // Out of bounds is blocked (the border of the plane is an obstacle).
  EXPECT_TRUE(g.blocked({-1, 0}));
  EXPECT_FALSE(g.blocked({5, 5}));
  EXPECT_THROW(RoutingGrid(geom::Rect{}), std::invalid_argument);
}

TEST(RoutingGrid, BlockRect) {
  RoutingGrid g({{0, 0}, {9, 9}});
  g.block_rect({{2, 2}, {4, 4}});
  EXPECT_TRUE(g.blocked({2, 2}));
  EXPECT_TRUE(g.blocked({4, 4}));
  EXPECT_TRUE(g.blocked({3, 3}));
  EXPECT_FALSE(g.blocked({5, 4}));
  // Clipping against the plane is silent.
  g.block_rect({{8, 8}, {20, 20}});
  EXPECT_TRUE(g.blocked({9, 9}));
}

TEST(RoutingGrid, TerminalOwnership) {
  RoutingGrid g({{0, 0}, {9, 9}});
  g.set_terminal({3, 3}, 7);
  EXPECT_TRUE(g.blocked({3, 3}));
  EXPECT_EQ(g.terminal_owner({3, 3}), 7);
  EXPECT_TRUE(g.enterable({3, 3}, 7));
  EXPECT_FALSE(g.enterable({3, 3}, 8));
  EXPECT_THROW(g.set_terminal({99, 0}, 1), std::invalid_argument);
}

TEST(RoutingGrid, Claims) {
  RoutingGrid g({{0, 0}, {9, 9}});
  g.set_claim({4, 4}, 2);
  EXPECT_EQ(g.claim_owner({4, 4}), 2);
  EXPECT_TRUE(g.enterable({4, 4}, 2));
  EXPECT_FALSE(g.enterable({4, 4}, 3));
  EXPECT_FALSE(g.passable({4, 4}, 3, true));
  g.clear_claim({4, 4});
  EXPECT_EQ(g.claim_owner({4, 4}), kNone);
  EXPECT_TRUE(g.enterable({4, 4}, 3));
}

TEST(RoutingGrid, OccupancyRules) {
  RoutingGrid g({{0, 0}, {9, 9}});
  const geom::Point pts[] = {{1, 5}, {8, 5}};  // horizontal run of net 0
  g.occupy_polyline(0, pts);
  EXPECT_EQ(g.h_net({4, 5}), 0);
  EXPECT_EQ(g.v_net({4, 5}), kNone);
  // Another net cannot run horizontally over it...
  EXPECT_FALSE(g.passable({4, 5}, 1, true));
  // ...but may cross vertically.
  EXPECT_TRUE(g.passable({4, 5}, 1, false));
  EXPECT_TRUE(g.crosses_at({4, 5}, 1, false));
  EXPECT_FALSE(g.crosses_at({4, 5}, 0, false));  // own net: no crossing
  // Nobody can put a corner on it, not even net 0 itself.
  EXPECT_FALSE(g.can_turn({4, 5}, 1));
  EXPECT_FALSE(g.can_turn({4, 5}, 0));
  EXPECT_TRUE(g.can_turn({4, 6}, 1));
  EXPECT_TRUE(g.occupied_by({4, 5}, 0));
  EXPECT_FALSE(g.occupied_by({4, 5}, 1));
}

TEST(RoutingGrid, CornerOccupiesBothOrientations) {
  RoutingGrid g({{0, 0}, {9, 9}});
  const geom::Point pts[] = {{1, 1}, {5, 1}, {5, 5}};  // L with corner at (5,1)
  g.occupy_polyline(0, pts);
  EXPECT_EQ(g.h_net({5, 1}), 0);
  EXPECT_EQ(g.v_net({5, 1}), 0);
  EXPECT_FALSE(g.passable({5, 1}, 1, true));
  EXPECT_FALSE(g.passable({5, 1}, 1, false));
}

TEST(RoutingGrid, OverlapThrows) {
  RoutingGrid g({{0, 0}, {9, 9}});
  const geom::Point a[] = {{1, 5}, {8, 5}};
  g.occupy_polyline(0, a);
  const geom::Point b[] = {{3, 5}, {6, 5}};
  EXPECT_THROW(g.occupy_polyline(1, b), std::logic_error);
  // Same net re-occupying is fine.
  g.occupy_polyline(0, b);
  // Crossing is fine.
  const geom::Point c[] = {{4, 2}, {4, 8}};
  g.occupy_polyline(1, c);
  EXPECT_EQ(g.crossing_count(), 1);
}

TEST(RoutingGrid, NonOrthogonalPolylineThrows) {
  RoutingGrid g({{0, 0}, {9, 9}});
  const geom::Point bad[] = {{0, 0}, {3, 3}};
  EXPECT_THROW(g.occupy_polyline(0, bad), std::invalid_argument);
}

TEST(RoutingGrid, CrossingCount) {
  RoutingGrid g({{0, 0}, {9, 9}});
  const geom::Point h[] = {{0, 4}, {9, 4}};
  const geom::Point v1[] = {{2, 0}, {2, 9}};
  const geom::Point v2[] = {{7, 0}, {7, 9}};
  g.occupy_polyline(0, h);
  g.occupy_polyline(1, v1);
  g.occupy_polyline(2, v2);
  EXPECT_EQ(g.crossing_count(), 2);
}

// --- grid construction from a placed diagram --------------------------------

Network simple_net() {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");  // size 4x2, a at (0,1), y at (4,1)
  lib.instantiate(net, "buf", "b1");
  const NetId n = net.add_net("n0");
  net.connect(n, *net.term_by_name(0, "y"));
  net.connect(n, *net.term_by_name(1, "a"));
  return net;
}

TEST(BuildGrid, BlocksModulesAndOpensTerminals) {
  const Network net = simple_net();
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {10, 0});
  const RoutingGrid g = build_grid(dia, 3);
  EXPECT_EQ(g.area(), (geom::Rect{{-3, -3}, {17, 5}}));
  EXPECT_TRUE(g.blocked({2, 1}));    // inside module b0
  EXPECT_TRUE(g.blocked({0, 0}));    // boundary
  EXPECT_FALSE(g.blocked({5, 1}));   // channel
  // Terminal of net 0 at (4,1): blocked but owned.
  EXPECT_EQ(g.terminal_owner({4, 1}), 0);
  EXPECT_TRUE(g.enterable({4, 1}, 0));
  EXPECT_FALSE(g.enterable({4, 1}, 1));
}

TEST(BuildGrid, UnconnectedTerminalIsPlainObstacle) {
  Network net;
  net.add_module("m", "", {4, 2});
  net.add_terminal(0, "t", TermType::In, {0, 1});
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  const RoutingGrid g = build_grid(dia, 2);
  EXPECT_TRUE(g.blocked({0, 1}));
  EXPECT_EQ(g.terminal_owner({0, 1}), kNone);
}

TEST(BuildGrid, SystemTerminalIsOwnedObstacle) {
  Network net;
  net.add_module("m", "", {4, 2});
  const TermId t = net.add_terminal(0, "y", TermType::Out, {4, 1});
  const TermId st = net.add_system_terminal("o", TermType::Out);
  const NetId n = net.add_net("n");
  net.connect(n, t);
  net.connect(n, st);
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_system_term(st, {8, 1});
  const RoutingGrid g = build_grid(dia, 2);
  EXPECT_TRUE(g.blocked({8, 1}));
  EXPECT_EQ(g.terminal_owner({8, 1}), n);
}

TEST(BuildGrid, PreroutedNetsOccupy) {
  const Network net = simple_net();
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {10, 0});
  dia.add_polyline(0, {{4, 1}, {10, 1}});
  const RoutingGrid g = build_grid(dia, 2);
  EXPECT_EQ(g.h_net({7, 1}), 0);
}

TEST(BuildGrid, RequiresPlacement) {
  const Network net = simple_net();
  Diagram dia(net);
  EXPECT_THROW(build_grid(dia, 2), std::invalid_argument);
}

}  // namespace
}  // namespace na
