// Sharded routing: region partitioning, byte-determinism across thread
// counts, equality with the sequential driver at one shard, and the halo
// stitch pass actually connecting boundary-spanning nets.
#include "route/shard_route.hpp"

#include <gtest/gtest.h>

#include "gen/synth.hpp"
#include "place/placer.hpp"
#include "schematic/escher_writer.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

Network mesh(int modules, std::uint64_t seed = 1) {
  gen::SynthOptions o;
  o.topology = gen::SynthTopology::GridMesh;
  o.modules = modules;
  o.seed = seed;
  return gen::synth_network(o);
}

PlacerOptions placer_options() {
  PlacerOptions o;
  o.max_part_size = 8;
  o.max_box_size = 4;
  o.max_connections = 16;
  return o;
}

Diagram placed(const Network& net, int threads = 1) {
  Diagram dia(net);
  PlacerOptions o = placer_options();
  o.threads = threads;
  place(dia, o);
  return dia;
}

/// Byte image of a diagram (fixed template name and timestamp).
std::string bytes(const Diagram& dia) {
  return to_escher_diagram(dia, "shard_test", 0);
}

void expect_reports_equal(const RouteReport& a, const RouteReport& b) {
  EXPECT_EQ(a.nets_routed, b.nets_routed);
  EXPECT_EQ(a.nets_failed, b.nets_failed);
  EXPECT_EQ(a.connections_made, b.connections_made);
  EXPECT_EQ(a.connections_failed, b.connections_failed);
  EXPECT_EQ(a.retried_connections, b.retried_connections);
  EXPECT_EQ(a.total_expansions, b.total_expansions);
  EXPECT_EQ(a.failed_nets, b.failed_nets);
}

TEST(ShardRegions, PartitionThePlaneExactly) {
  const geom::Rect area{{-3, 0}, {96, 49}};
  for (const int shards : {1, 2, 4, 7}) {
    const auto regions = shard_regions(area, shards);
    ASSERT_EQ(regions.size(), static_cast<size_t>(shards));
    int next_x = area.lo.x;
    for (const geom::Rect& r : regions) {
      EXPECT_EQ(r.lo.x, next_x);  // adjacent, no gap, no overlap
      EXPECT_EQ(r.lo.y, area.lo.y);
      EXPECT_EQ(r.hi.y, area.hi.y);
      next_x = r.hi.x + 1;
    }
    EXPECT_EQ(next_x, area.hi.x + 1);
    // Widths within one column of each other.
    int wmin = area.width() + 1, wmax = 0;
    for (const geom::Rect& r : regions) {
      wmin = std::min(wmin, r.width() + 1);
      wmax = std::max(wmax, r.width() + 1);
    }
    EXPECT_LE(wmax - wmin, 1);
  }
  // More shards than columns clamps instead of emitting empty regions.
  const auto tiny = shard_regions({{0, 0}, {2, 5}}, 8);
  EXPECT_EQ(tiny.size(), 3u);
}

TEST(ShardRoute, SingleShardMatchesSequentialDriver) {
  const Network net = mesh(120);
  const Diagram base = placed(net);
  RouterOptions opt;

  Diagram a = base;
  const RouteReport ra = route_all(a, opt);
  Diagram b = base;
  ShardRouteStats stats;
  const RouteReport rb = shard_route_all(b, opt, ShardOptions{1, 16, 1}, &stats);

  EXPECT_EQ(bytes(a), bytes(b));
  expect_reports_equal(ra, rb);
  EXPECT_EQ(stats.nets_stitch, 0);
  ASSERT_EQ(stats.shard_nets.size(), 1u);
}

TEST(ShardRoute, ByteIdenticalAcrossThreadCounts) {
  const Network net = mesh(240);
  const Diagram base = placed(net);
  RouterOptions opt;
  ShardOptions sopt;
  sopt.shards = 4;

  std::string first_bytes;
  RouteReport first_report;
  ShardRouteStats first_stats;
  for (const int threads : {1, 2, 4}) {
    Diagram dia = base;
    sopt.threads = threads;
    ShardRouteStats stats;
    const RouteReport report = shard_route_all(dia, opt, sopt, &stats);
    EXPECT_TRUE(validate_diagram(dia).empty()) << "threads=" << threads;
    if (threads == 1) {
      first_bytes = bytes(dia);
      first_report = report;
      first_stats = stats;
      EXPECT_GT(first_bytes.size(), 0u);
    } else {
      EXPECT_EQ(bytes(dia), first_bytes) << "threads=" << threads;
      expect_reports_equal(report, first_report);
      EXPECT_EQ(stats.shard_nets, first_stats.shard_nets);
      EXPECT_EQ(stats.nets_stitch, first_stats.nets_stitch);
    }
  }
}

TEST(ShardRoute, StitchNetsConnectAcrossBoundaries) {
  // A mesh cut into four strips: the east nets crossing a cut must be
  // routed by the halo stitch pass, and the result must be a fully valid
  // diagram with those nets connected.
  const Network net = mesh(120);
  Diagram dia = placed(net);
  ShardRouteStats stats;
  const RouteReport report =
      shard_route_all(dia, RouterOptions{}, ShardOptions{4, 16, 1}, &stats);

  EXPECT_GT(stats.nets_stitch, 0);
  EXPECT_GT(stats.nets_intra, 0);
  EXPECT_TRUE(validate_diagram(dia).empty());
  // Every net (all are 2+-terminal and placed) ends up routed: the stitch
  // pass connected the boundary-spanning ones.
  EXPECT_EQ(report.nets_failed, 0);
  EXPECT_EQ(report.nets_routed + report.nets_failed,
            stats.nets_intra + stats.nets_stitch);
}

TEST(ShardRoute, TorusWrapNetsStitch) {
  // Torus wrap nets span the whole plane — the stress case for the halo
  // pass: they must all be classified as stitch nets and still route.
  gen::SynthOptions o;
  o.topology = gen::SynthTopology::Torus;
  o.modules = 64;
  const Network net = gen::synth_network(o);
  Diagram dia = placed(net);
  ShardRouteStats stats;
  const RouteReport report =
      shard_route_all(dia, RouterOptions{}, ShardOptions{4, 24, 1}, &stats);
  EXPECT_GT(stats.nets_stitch, 0);
  EXPECT_TRUE(validate_diagram(dia).empty());
  EXPECT_EQ(report.nets_failed, 0);
}

TEST(PlacerThreads, ByteIdenticalAcrossThreadCounts) {
  const Network net = mesh(180);
  const std::string one = bytes(placed(net, 1));
  EXPECT_EQ(bytes(placed(net, 2)), one);
  EXPECT_EQ(bytes(placed(net, 4)), one);
}

}  // namespace
}  // namespace na
