# Repository hygiene check, run as the `repo_hygiene` ctest: fails when any
# *tracked* file is a build tree or generated artifact.  Guards the cleanup
# of the accidentally committed build-review/ tree — `git ls-files` must
# never again match build*/ or binary outputs.
#
# Usage: cmake -DREPO_ROOT=<source dir> -P repo_hygiene.cmake

find_package(Git QUIET)
if(NOT GIT_FOUND)
  message(STATUS "repo_hygiene: git not available, nothing to check")
  return()
endif()

execute_process(
  COMMAND "${GIT_EXECUTABLE}" -C "${REPO_ROOT}" ls-files
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE tracked
  ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(STATUS "repo_hygiene: ${REPO_ROOT} is not a git checkout, nothing to check")
  return()
endif()

string(REPLACE "\n" ";" tracked "${tracked}")
set(offenders "")
foreach(path IN LISTS tracked)
  if(path MATCHES "^build[^/]*/"                             # any build tree
     OR path MATCHES "\\.(o|obj|a|so|dylib|exe|bin|out)$"    # binary artifacts
     OR path MATCHES "(^|/)BENCH_[^/]*\\.json$"              # benchmark output
     OR path MATCHES "(^|/)bench_output\\.txt$")
    list(APPEND offenders "${path}")
  endif()
endforeach()

if(offenders)
  list(LENGTH offenders count)
  string(REPLACE ";" "\n  " offenders "${offenders}")
  message(FATAL_ERROR
    "repo_hygiene: ${count} build artifact(s) are committed — "
    "git rm --cached them and extend .gitignore:\n  ${offenders}")
endif()
message(STATUS "repo_hygiene: no tracked build artifacts")
