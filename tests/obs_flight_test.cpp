// Tests of the telemetry additions: the log-linear obs::Histogram (bucket
// geometry, quantile error bound, merge, concurrent recording), the
// flight-recorder ring in the trace layer (wrap-around retention, memory
// held at the cap, byte-stable dumps) and slow-request tail sampling
// (windowed capture of the calling thread's span subtree).
//
// With the tracing macros compiled out (NA_TRACE=OFF) the flight and slow
// suites flip around: the APIs must stay linkable and record nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace na {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

// ----- histogram bucket geometry ---------------------------------------------

TEST(Histogram, LinearRegionIsExact) {
  // Values 0..15 get one bucket each: index == value, width 1.
  for (long long v = 0; v < 16; ++v) {
    const int b = obs::Histogram::bucket_index(v);
    EXPECT_EQ(b, static_cast<int>(v));
    EXPECT_EQ(obs::Histogram::bucket_lower(b), v);
    EXPECT_EQ(obs::Histogram::bucket_upper(b), v + 1);
  }
}

TEST(Histogram, BucketsTileTheRange) {
  // upper(i) == lower(i+1): no gaps, no overlaps, monotonic lowers.
  for (int i = 0; i + 1 < obs::Histogram::kBucketCount; ++i) {
    EXPECT_EQ(obs::Histogram::bucket_upper(i),
              obs::Histogram::bucket_lower(i + 1))
        << "bucket " << i;
    EXPECT_LT(obs::Histogram::bucket_lower(i),
              obs::Histogram::bucket_lower(i + 1));
  }
}

TEST(Histogram, EveryValueLandsInItsBucket) {
  // Probe around every power of two: v must satisfy lower <= v < upper.
  std::vector<long long> probes = {0, 1, 15, 16, 17};
  for (int p = 5; p <= 40; ++p) {
    const long long v = 1LL << p;
    probes.push_back(v - 1);
    probes.push_back(v);
    probes.push_back(v + v / 16);  // one sub-bucket in
  }
  for (const long long v : probes) {
    const int b = obs::Histogram::bucket_index(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, obs::Histogram::kBucketCount);
    if (v < (1LL << 40)) {
      EXPECT_LE(obs::Histogram::bucket_lower(b), v) << "value " << v;
      EXPECT_GT(obs::Histogram::bucket_upper(b), v) << "value " << v;
    }
  }
  // Out-of-range values clamp instead of indexing out of bounds.
  EXPECT_EQ(obs::Histogram::bucket_index(-5), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(1LL << 50),
            obs::Histogram::kBucketCount - 1);
}

TEST(Histogram, RelativeErrorBounded) {
  // The sub-bucket width bounds the quantile error: for any recorded
  // value v, the bucket's reported upper-1 is within v/16 of v.
  for (long long v = 1; v < (1LL << 30); v = v * 3 + 7) {
    const int b = obs::Histogram::bucket_index(v);
    const long long reported = obs::Histogram::bucket_upper(b) - 1;
    EXPECT_GE(reported, v);
    EXPECT_LE(reported - v, v / 16 + 1) << "value " << v;
  }
}

// ----- recording and quantiles -----------------------------------------------

TEST(Histogram, CountSumMinMaxExact) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  h.record(7);
  h.record(130);
  h.record(42);
  const obs::HistogramData d = h.snapshot();
  EXPECT_EQ(d.count, 3);
  EXPECT_EQ(d.sum, 179);
  EXPECT_EQ(d.min, 7);   // min/max are exact even though buckets quantise
  EXPECT_EQ(d.max, 130);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  const obs::HistogramData d = obs::Histogram().snapshot();
  EXPECT_EQ(d.count, 0);
  EXPECT_EQ(d.min, 0);
  EXPECT_EQ(d.max, 0);
  EXPECT_TRUE(d.buckets.empty());
  EXPECT_EQ(d.quantile(0.5), 0);
  EXPECT_EQ(d.mean(), 0.0);
}

TEST(Histogram, QuantilesWithinErrorBound) {
  // Uniform 1..10000: p50 ~ 5000, p99 ~ 9900, p0 = min, p100 = max.
  obs::Histogram h;
  for (long long v = 1; v <= 10000; ++v) h.record(v);
  const obs::HistogramData d = h.snapshot();
  const auto near = [](long long got, long long want) {
    const long long slack = want / 16 + 1;
    return got >= want - slack && got <= want + slack;
  };
  EXPECT_TRUE(near(d.quantile(0.50), 5000)) << d.quantile(0.50);
  EXPECT_TRUE(near(d.quantile(0.99), 9900)) << d.quantile(0.99);
  EXPECT_EQ(d.quantile(0.0), 1);
  EXPECT_EQ(d.quantile(1.0), 10000);  // clamped to the exact max
  EXPECT_LE(d.quantile(0.50), d.quantile(0.90));
  EXPECT_LE(d.quantile(0.90), d.quantile(0.99));
}

TEST(Histogram, RecordMsConvertsToMicroseconds) {
  obs::Histogram h;
  h.record_ms(1.5);
  const obs::HistogramData d = h.snapshot();
  EXPECT_EQ(d.count, 1);
  EXPECT_EQ(d.min, 1500);
  EXPECT_EQ(d.max, 1500);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  // Recording a population split across two histograms and merging the
  // snapshots must equal recording everything into one.
  obs::Histogram a, b, both;
  for (long long v = 1; v <= 500; ++v) {
    (v % 2 == 0 ? a : b).record(v * 13);
    both.record(v * 13);
  }
  obs::HistogramData merged = a.snapshot();
  merged.merge(b.snapshot());
  const obs::HistogramData ref = both.snapshot();
  EXPECT_EQ(merged.count, ref.count);
  EXPECT_EQ(merged.sum, ref.sum);
  EXPECT_EQ(merged.min, ref.min);
  EXPECT_EQ(merged.max, ref.max);
  EXPECT_EQ(merged.buckets, ref.buckets);
  EXPECT_EQ(merged.quantile(0.5), ref.quantile(0.5));
  EXPECT_EQ(merged.quantile(0.99), ref.quantile(0.99));
}

TEST(Histogram, MergeIntoEmptyAndWithEmpty) {
  obs::Histogram h;
  h.record(9);
  h.record(4000);
  const obs::HistogramData src = h.snapshot();
  obs::HistogramData onto_empty;  // empty.merge(x) == x
  onto_empty.merge(src);
  EXPECT_EQ(onto_empty.buckets, src.buckets);
  EXPECT_EQ(onto_empty.min, src.min);
  EXPECT_EQ(onto_empty.max, src.max);
  obs::HistogramData with_empty = src;  // x.merge(empty) == x
  with_empty.merge(obs::HistogramData{});
  EXPECT_EQ(with_empty.buckets, src.buckets);
  EXPECT_EQ(with_empty.min, src.min);
  EXPECT_EQ(with_empty.count, src.count);
}

TEST(Histogram, RegistryEmissionIsByteStable) {
  // Two emissions of the same registry state render identical bytes, and
  // a registry without histograms keeps the pre-histogram JSON shape.
  obs::MetricsRegistry scalars;
  scalars.set("serve.requests", 3);
  EXPECT_EQ(scalars.to_json().find("\"histograms\""), std::string::npos);

  obs::Histogram h;
  for (long long v = 1; v <= 100; ++v) h.record(v * 7);
  obs::MetricsRegistry reg;
  reg.set("serve.requests", 3);
  reg.set_histogram("serve.lat.edit", h.snapshot());
  const std::string a = reg.to_json();
  const std::string b = reg.to_json();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"histograms\""), std::string::npos);
  EXPECT_NE(a.find("\"serve.lat.edit\""), std::string::npos);
  EXPECT_EQ(reg.to_text(), reg.to_text());
  EXPECT_EQ(reg.to_prometheus(), reg.to_prometheus());
  // Prometheus exposition carries the cumulative bucket series.
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("na_serve_lat_edit_bucket{le=\"+Inf\"} 100"),
            std::string::npos);
  EXPECT_NE(prom.find("na_serve_lat_edit_count 100"), std::string::npos);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  // The wait-free contract: N threads hammering one histogram, every
  // record lands.  The obs_flight_tsan ctest entry runs this strictly.
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kEach = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kEach; ++i) h.record(t * kEach + i);
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::HistogramData d = h.snapshot();
  EXPECT_EQ(d.count, static_cast<long long>(kThreads) * kEach);
  EXPECT_EQ(d.min, 0);
  EXPECT_EQ(d.max, kThreads * kEach - 1);
  long long bucket_total = 0;
  for (const auto& [index, count] : d.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, d.count);
}

// ----- flight recorder -------------------------------------------------------

/// Fresh recorder state: events dropped, flight mode off, epoch re-armed.
void fresh_trace(size_t flight_capacity = 0) {
  obs::trace_disable();
  obs::trace_flight_enable(0);
  obs::trace_reset();
  if (flight_capacity > 0) obs::trace_flight_enable(flight_capacity);
  obs::trace_enable();
}

#if NA_TRACE_ENABLED

TEST(Flight, RingRetainsExactlyTheLastN) {
  constexpr size_t kCap = 32;
  constexpr int kTotal = 100;
  fresh_trace(kCap);
  EXPECT_TRUE(obs::trace_flight_enabled());
  EXPECT_EQ(obs::trace_flight_capacity(), kCap);
  for (int i = 0; i < kTotal; ++i) {
    NA_TRACE_INSTANT("tick", {"i", static_cast<long long>(i)});
  }
  obs::trace_disable();

  // Exactly the last kCap events survive, in recording order, and the
  // per-thread sequence numbers stay monotonic across the wrap.
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), kCap);
  for (size_t i = 0; i < events.size(); ++i) {
    ASSERT_EQ(events[i].args.size(), 1u);
    EXPECT_EQ(events[i].args[0].value,
              static_cast<long long>(kTotal - kCap + i));
    if (i > 0) {
      EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
      EXPECT_GE(events[i].ts, events[i - 1].ts);
    }
  }
  EXPECT_EQ(obs::trace_flight_dropped(), kTotal - kCap);
  fresh_trace();
}

TEST(Flight, MemoryHeldAtCapUnderSustainedLoad) {
  // The acceptance bar: a busy recorder with the ring bound never grows
  // trace memory past capacity, no matter how long it runs.
  constexpr size_t kCap = 64;
  fresh_trace(kCap);
  for (int i = 0; i < 20000; ++i) {
    NA_TRACE_SCOPE("op");
  }
  obs::trace_disable();
  EXPECT_EQ(obs::trace_buffered_events(), kCap);  // only this thread recorded
  EXPECT_EQ(obs::trace_flight_dropped(), 20000u - kCap);
  fresh_trace();
}

TEST(Flight, CapacityShrinkShedsOldestOnNextRecord) {
  // Enabling a smaller ring over a fatter buffer sheds down to the new
  // cap on the owning thread's next record — oldest events go first.
  fresh_trace();
  for (int i = 0; i < 100; ++i) {
    NA_TRACE_INSTANT("grow", {"i", static_cast<long long>(i)});
  }
  obs::trace_flight_enable(16);
  NA_TRACE_INSTANT("after", {"i", 100});
  obs::trace_disable();
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_STREQ(events.back().name, "after");
  EXPECT_STREQ(events.front().name, "grow");
  EXPECT_EQ(events.front().args[0].value, 85);  // 85..99 + "after" retained
  fresh_trace();
}

TEST(Flight, DumpIsByteStableAndRequiresFlightMode) {
  fresh_trace(32);
  for (int i = 0; i < 50; ++i) {
    NA_TRACE_SCOPE("dump.work");
  }
  obs::trace_disable();
  const std::string p1 = temp_path("flight_dump_1.json");
  const std::string p2 = temp_path("flight_dump_2.json");
  ASSERT_TRUE(obs::trace_flight_dump(p1));
  ASSERT_TRUE(obs::trace_flight_dump(p2));
  const std::string d1 = slurp(p1);
  EXPECT_EQ(d1, slurp(p2));  // same rings, same bytes
  EXPECT_NE(d1.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(d1.find("dump.work"), std::string::npos);

  // Dumping without flight mode is refused (use trace_write for that).
  obs::trace_flight_enable(0);
  EXPECT_FALSE(obs::trace_flight_dump(p1));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
  fresh_trace();
}

// ----- slow-request tail sampling --------------------------------------------

TEST(Slow, CaptureWindowsTheCallingThreadsEvents) {
  fresh_trace(128);
  const std::string log = temp_path("slow_capture.jsonl");
  ASSERT_TRUE(obs::trace_slow_log_open(log));
  EXPECT_TRUE(obs::trace_slow_log_active());
  EXPECT_FALSE(obs::trace_slow_log_open(log));  // one log at a time

  NA_TRACE_MARK("before.window");
  const std::uint64_t t0 = obs::trace_now_ns();
  { NA_TRACE_SCOPE("slow.body"); }
  NA_TRACE_MARK("slow.note");
  const std::uint64_t t1 = obs::trace_now_ns();
  // An event recorded after the window must not leak into the capture.
  NA_TRACE_MARK("after.window");

  const size_t written = obs::trace_slow_capture("serve.edit", t0, t1, 12.5);
  EXPECT_EQ(written, 2u);
  EXPECT_EQ(obs::trace_slow_log_records(), 1u);
  obs::trace_disable();
  ASSERT_TRUE(obs::trace_slow_log_close());
  EXPECT_FALSE(obs::trace_slow_log_close());  // already closed

  const std::string line = slurp(log);
  EXPECT_EQ(line.find("{\"label\":\"serve.edit\",\"ms\":12.500"), 0u);
  EXPECT_NE(line.find("slow.body"), std::string::npos);
  EXPECT_NE(line.find("slow.note"), std::string::npos);
  EXPECT_EQ(line.find("before.window"), std::string::npos);
  EXPECT_EQ(line.find("after.window"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');  // line-JSON: one record per line
  std::remove(log.c_str());
  fresh_trace();
}

TEST(Slow, CaptureWithoutLogIsFreeAndRecordsNothing) {
  fresh_trace(64);
  NA_TRACE_MARK("orphan");
  EXPECT_EQ(obs::trace_slow_capture("serve.edit", 0, obs::trace_now_ns(), 1.0),
            0u);
  obs::trace_disable();
  fresh_trace();
}

#else  // !NA_TRACE_ENABLED

TEST(FlightOff, ApisLinkAndRecordNothing) {
  // NA_TRACE=OFF: the macros compile to nothing, but the flight wiring in
  // na_serve still links and the rings simply stay empty.
  fresh_trace(32);
  EXPECT_TRUE(obs::trace_flight_enabled());
  for (int i = 0; i < 100; ++i) {
    NA_TRACE_SCOPE("gone");
    NA_TRACE_INSTANT("also.gone", {"i", static_cast<long long>(i)});
  }
  obs::trace_disable();
  EXPECT_TRUE(obs::trace_events().empty());
  EXPECT_EQ(obs::trace_buffered_events(), 0u);
  EXPECT_EQ(obs::trace_flight_dropped(), 0u);
  const std::string path = temp_path("flight_off_dump.json");
  EXPECT_TRUE(obs::trace_flight_dump(path));  // valid empty document
  EXPECT_NE(slurp(path).find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
  fresh_trace();
}

TEST(FlightOff, SlowLogStillOpensButCapturesNoEvents) {
  fresh_trace(32);
  const std::string log = temp_path("slow_off.jsonl");
  ASSERT_TRUE(obs::trace_slow_log_open(log));
  { NA_TRACE_SCOPE("gone"); }
  EXPECT_EQ(obs::trace_slow_capture("serve.edit", 0, obs::trace_now_ns(), 9.0),
            0u);
  obs::trace_disable();
  ASSERT_TRUE(obs::trace_slow_log_close());
  std::remove(log.c_str());
  fresh_trace();
}

#endif  // NA_TRACE_ENABLED

}  // namespace
}  // namespace na
