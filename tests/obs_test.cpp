// Tests of the observability layer (src/obs/): trace recorder semantics
// (nesting, per-thread monotonicity, byte-stable flush, Chrome-JSON
// round-trip), metrics registry + JSON writer, rate-limited diagnostics,
// and the guard that a traced pipeline run produces a byte-identical
// diagram and report to an untraced one.
//
// When the tracing macros are compiled out (NA_TRACE=OFF) the recorder
// tests flip around: the same instrumented code must record nothing.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/generator.hpp"
#include "core/thread_pool.hpp"
#include "gen/life.hpp"
#include "obs/diag.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_absorb.hpp"
#include "obs/trace.hpp"
#include "route/net_order.hpp"
#include "route/router.hpp"
#include "schematic/escher_writer.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

// ----- a minimal JSON parser -------------------------------------------------
// Just enough to validate the trace and stats emissions: objects, arrays,
// strings, numbers (kept as text so ts/dur can be reconstructed exactly),
// true/false/null.  Throws std::runtime_error on malformed input.

struct Json {
  enum Kind { kObject, kArray, kString, kNumber, kBool, kNull } kind = kNull;
  std::vector<std::pair<std::string, Json>> object;
  std::vector<Json> array;
  std::string str;     // kString value or kNumber text
  bool boolean = false;

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double number() const { return std::stod(str); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error(std::string("JSON error at ") +
                             std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            out += s_.substr(pos_ - 2, 6);  // keep verbatim; tests don't use it
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }
  Json value() {
    skip_ws();
    const char c = peek();
    Json v;
    if (c == '{') {
      ++pos_;
      v.kind = Json::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = string();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = Json::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.array.push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = Json::kString;
      v.str = string();
      return v;
    }
    if (c == 't' || c == 'f') {
      v.kind = Json::kBool;
      const std::string word = c == 't' ? "true" : "false";
      if (s_.compare(pos_, word.size(), word) != 0) fail("bad literal");
      pos_ += word.size();
      v.boolean = c == 't';
      return v;
    }
    if (c == 'n') {
      if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
      pos_ += 4;
      return v;
    }
    // number
    v.kind = Json::kNumber;
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    v.str = s_.substr(start, pos_ - start);
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

/// Reconstructs exact nanoseconds from the emitter's fixed "<us>.<3-digit>"
/// decimal text — the round-trip check for ts/dur.
std::uint64_t ns_from_us_text(const std::string& text) {
  const size_t dot = text.find('.');
  EXPECT_NE(dot, std::string::npos) << "ts/dur text: " << text;
  EXPECT_EQ(text.size() - dot - 1, 3u) << "ts/dur text: " << text;
  return std::stoull(text.substr(0, dot)) * 1000 +
         std::stoull(text.substr(dot + 1));
}

/// Fresh recorder state for a test (events dropped, epoch re-armed).
void fresh_trace() {
  obs::trace_disable();
  obs::trace_reset();
  obs::trace_enable();
}

// ----- trace recorder --------------------------------------------------------

#if NA_TRACE_ENABLED

TEST(Trace, CompiledIn) { EXPECT_TRUE(obs::trace_compiled_in()); }

TEST(Trace, SpanNesting) {
  fresh_trace();
  {
    NA_TRACE_SCOPE("outer");
    {
      NA_TRACE_SCOPE("inner_a");
      NA_TRACE_MARK("tick");
    }
    { NA_TRACE_SCOPE("inner_b"); }
  }
  obs::trace_disable();
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 4u);

  // Same-thread spans must be properly nested or disjoint — never
  // partially overlapping.
  std::vector<obs::TraceEventView> spans;
  for (const auto& e : events) {
    if (e.ph == 'X') spans.push_back(e);
  }
  ASSERT_EQ(spans.size(), 3u);
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = i + 1; j < spans.size(); ++j) {
      if (spans[i].tid != spans[j].tid) continue;
      const std::uint64_t a0 = spans[i].ts, a1 = spans[i].ts + spans[i].dur;
      const std::uint64_t b0 = spans[j].ts, b1 = spans[j].ts + spans[j].dur;
      const bool disjoint = a1 <= b0 || b1 <= a0;
      const bool a_in_b = b0 <= a0 && a1 <= b1;
      const bool b_in_a = a0 <= b0 && b1 <= a1;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << spans[i].name << " [" << a0 << "," << a1 << ") vs "
          << spans[j].name << " [" << b0 << "," << b1 << ")";
    }
  }

  // The named spans contain what they should: outer covers both inners,
  // and the instant lands inside inner_a.
  std::map<std::string, const obs::TraceEventView*> by_name;
  for (const auto& e : events) by_name[e.name] = &e;
  ASSERT_TRUE(by_name.count("outer") && by_name.count("inner_a") &&
              by_name.count("inner_b") && by_name.count("tick"));
  const auto* outer = by_name["outer"];
  const auto* inner_a = by_name["inner_a"];
  const auto* tick = by_name["tick"];
  EXPECT_GE(inner_a->ts, outer->ts);
  EXPECT_LE(inner_a->ts + inner_a->dur, outer->ts + outer->dur);
  EXPECT_GE(tick->ts, inner_a->ts);
  EXPECT_LE(tick->ts, inner_a->ts + inner_a->dur);
}

TEST(Trace, SpanArgsRecorded) {
  fresh_trace();
  {
    NA_TRACE_SPAN(span, "work");
    span.arg("net", 42);
    span.arg("outcome", "clean");
    NA_TRACE_INSTANT("note", {"pos", 7});
  }
  obs::trace_disable();
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 2u);
  const auto& note = events[0].ph == 'i' ? events[0] : events[1];
  const auto& work = events[0].ph == 'X' ? events[0] : events[1];
  ASSERT_EQ(work.args.size(), 2u);
  EXPECT_STREQ(work.args[0].key, "net");
  EXPECT_EQ(work.args[0].value, 42);
  EXPECT_STREQ(work.args[1].key, "outcome");
  EXPECT_STREQ(work.args[1].str, "clean");
  ASSERT_EQ(note.args.size(), 1u);
  EXPECT_STREQ(note.args[0].key, "pos");
  EXPECT_EQ(note.args[0].value, 7);
}

TEST(Trace, PerThreadTimestampsMonotonicUnderPool) {
  fresh_trace();
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.submit([i] {
        NA_TRACE_SCOPE("task");
        NA_TRACE_INSTANT("step", {"i", i});
      });
    }
    pool.wait_idle();
  }  // pool join: workers quiesced before the flush below
  obs::trace_disable();
  const auto all = obs::trace_events();
  // The pool itself emits 'C' (queue-depth) counter events on submit and
  // task pop; keep them out of the span/instant accounting below but check
  // they are present and well-formed.
  std::vector<obs::TraceEventView> events;
  int queue_counters = 0;
  for (const auto& e : all) {
    if (e.ph == 'C') {
      if (std::string(e.name) == "pool.queue") {
        ++queue_counters;
        ASSERT_EQ(e.args.size(), 1u);
        EXPECT_STREQ(e.args[0].key, "queued");
        EXPECT_GE(e.args[0].value, 0);
      }
      continue;
    }
    events.push_back(e);
  }
  EXPECT_EQ(events.size(), 400u);
  EXPECT_GE(queue_counters, 400);  // one per submit + one per pop

  // Per thread, recording order (seq) must agree with time: instants carry
  // their own timestamp, spans their end time (they are recorded at close).
  std::map<int, std::vector<const obs::TraceEventView*>> per_tid;
  for (const auto& e : events) per_tid[e.tid].push_back(&e);
  for (auto& [tid, list] : per_tid) {
    std::sort(list.begin(), list.end(),
              [](const obs::TraceEventView* a, const obs::TraceEventView* b) {
                return a->seq < b->seq;
              });
    std::uint64_t last_end = 0;
    for (const auto* e : list) {
      const std::uint64_t end = e->ts + e->dur;
      EXPECT_GE(end, last_end) << "tid " << tid << " seq " << e->seq;
      last_end = end;
    }
  }

  // The merged view is globally sorted by (ts, tid, seq).
  for (size_t i = 1; i < events.size(); ++i) {
    const auto& a = events[i - 1];
    const auto& b = events[i];
    EXPECT_TRUE(a.ts < b.ts || (a.ts == b.ts && (a.tid < b.tid ||
                (a.tid == b.tid && a.seq < b.seq))));
  }
}

TEST(Trace, FlushIsByteStable) {
  fresh_trace();
  {
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i) {
      pool.submit([] { NA_TRACE_SCOPE("work"); });
    }
    pool.wait_idle();
  }
  obs::trace_disable();
  const std::string a = obs::trace_to_json();
  const std::string b = obs::trace_to_json();
  EXPECT_EQ(a, b);  // merge-sort flush is deterministic for fixed events
  EXPECT_FALSE(a.empty());
}

TEST(Trace, JsonRoundTripsPhTsDur) {
  fresh_trace();
  {
    NA_TRACE_SPAN(span, "alpha");
    span.arg("n", 3);
    span.arg("kind", "test");
    NA_TRACE_INSTANT("beta", {"x", -1});
  }
  obs::trace_disable();
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 2u);

  const std::string json = obs::trace_to_json();
  Json root;
  ASSERT_NO_THROW(root = JsonParser(json).parse()) << json;
  ASSERT_EQ(root.kind, Json::kObject);
  const Json* list = root.find("traceEvents");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->kind, Json::kArray);
  ASSERT_EQ(list->array.size(), events.size());

  for (size_t i = 0; i < events.size(); ++i) {
    const Json& ev = list->array[i];
    ASSERT_EQ(ev.kind, Json::kObject);
    const Json* name = ev.find("name");
    const Json* ph = ev.find("ph");
    const Json* ts = ev.find("ts");
    const Json* pid = ev.find("pid");
    const Json* tid = ev.find("tid");
    ASSERT_TRUE(name && ph && ts && pid && tid);
    EXPECT_EQ(name->str, events[i].name);
    ASSERT_EQ(ph->str.size(), 1u);
    EXPECT_EQ(ph->str[0], events[i].ph);
    EXPECT_EQ(ns_from_us_text(ts->str), events[i].ts);
    EXPECT_EQ(std::stoi(tid->str), events[i].tid);
    if (events[i].ph == 'X') {
      const Json* dur = ev.find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_EQ(ns_from_us_text(dur->str), events[i].dur);
    } else {
      const Json* scope = ev.find("s");
      ASSERT_NE(scope, nullptr);
      EXPECT_EQ(scope->str, "t");
    }
    if (!events[i].args.empty()) {
      const Json* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_EQ(args->object.size(), events[i].args.size());
      for (size_t a = 0; a < events[i].args.size(); ++a) {
        EXPECT_EQ(args->object[a].first, events[i].args[a].key);
        if (events[i].args[a].str != nullptr) {
          EXPECT_EQ(args->object[a].second.str, events[i].args[a].str);
        } else {
          EXPECT_EQ(std::stoll(args->object[a].second.str),
                    events[i].args[a].value);
        }
      }
    }
  }
}

TEST(Trace, DisabledRecordsNothing) {
  fresh_trace();
  obs::trace_disable();
  const size_t before = obs::trace_events().size();
  {
    NA_TRACE_SCOPE("ignored");
    NA_TRACE_MARK("ignored_too");
  }
  EXPECT_EQ(obs::trace_events().size(), before);
}

TEST(Trace, ResetDropsEvents) {
  fresh_trace();
  { NA_TRACE_SCOPE("x"); }
  obs::trace_disable();
  EXPECT_FALSE(obs::trace_events().empty());
  obs::trace_reset();
  EXPECT_TRUE(obs::trace_events().empty());
}

TEST(Trace, WriteProducesParsableFile) {
  fresh_trace();
  { NA_TRACE_SCOPE("filed"); }
  obs::trace_disable();
  const std::string path = testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(obs::trace_write(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), obs::trace_to_json());
  EXPECT_NO_THROW(JsonParser(ss.str()).parse());
  std::remove(path.c_str());
}

// ----- streaming flush -------------------------------------------------------

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

TEST(TraceStream, SingleFlushIsByteIdenticalToOneShot) {
  fresh_trace();
  {
    ThreadPool pool(4);
    for (int i = 0; i < 30; ++i) {
      pool.submit([] { NA_TRACE_SCOPE("streamed_work"); });
    }
    pool.wait_idle();
  }
  obs::trace_disable();
  const std::string one_shot = obs::trace_to_json();

  const std::string path = testing::TempDir() + "obs_stream_single.json";
  ASSERT_TRUE(obs::trace_stream_open(path));
  EXPECT_TRUE(obs::trace_stream_active());
  EXPECT_GT(obs::trace_stream_flush(), 0u);
  EXPECT_EQ(obs::trace_buffered_events(), 0u);  // flush drops what it wrote
  ASSERT_TRUE(obs::trace_stream_close());
  EXPECT_FALSE(obs::trace_stream_active());

  EXPECT_EQ(slurp(path), one_shot);
  std::remove(path.c_str());
}

TEST(TraceStream, ChunkedFlushesProduceOneValidDocument) {
  fresh_trace();
  const std::string path = testing::TempDir() + "obs_stream_chunks.json";
  ASSERT_TRUE(obs::trace_stream_open(path));

  // Three rounds of record-then-flush at quiescent points — the daemon's
  // pool-idle cadence.  Buffers must drain each round; the file must still
  // be a single well-formed Chrome trace with every event.
  size_t recorded = 0;
  for (int round = 0; round < 3; ++round) {
    {
      ThreadPool pool(3);
      for (int i = 0; i < 10; ++i) {
        pool.submit([] { NA_TRACE_SCOPE("chunk_work"); });
      }
      pool.wait_idle();
    }
    recorded += 10;
    EXPECT_GT(obs::trace_buffered_events(), 0u);
    EXPECT_GT(obs::trace_stream_flush(), 0u);
    EXPECT_EQ(obs::trace_buffered_events(), 0u);
  }
  { NA_TRACE_SCOPE("tail_span"); }  // left for close()'s final flush
  ++recorded;
  ASSERT_TRUE(obs::trace_stream_close());
  obs::trace_disable();

  const std::string text = slurp(path);
  Json doc;
  ASSERT_NO_THROW(doc = JsonParser(text).parse());
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // The pool instruments itself too, so the file holds at least the spans
  // this test recorded; count the named ones exactly.
  EXPECT_GE(events->array.size(), recorded);
  size_t chunk_spans = 0, tail_spans = 0;
  // Timestamps in the merged file are globally non-decreasing: each chunk
  // was flushed at a quiescent point, so chunks never interleave in time.
  double prev = -1.0;
  for (const Json& e : events->array) {
    const Json* ts = e.find("ts");
    ASSERT_NE(ts, nullptr);
    EXPECT_GE(ts->number(), prev);
    prev = ts->number();
    const std::string& name = e.find("name")->str;
    chunk_spans += name == "chunk_work";
    tail_spans += name == "tail_span";
  }
  EXPECT_EQ(chunk_spans, 30u);
  EXPECT_EQ(tail_spans, 1u);
  std::remove(path.c_str());
}

TEST(TraceStream, EmptyStreamWritesValidEmptyDocument) {
  fresh_trace();
  obs::trace_disable();
  const std::string path = testing::TempDir() + "obs_stream_empty.json";
  ASSERT_TRUE(obs::trace_stream_open(path));
  EXPECT_EQ(obs::trace_stream_flush(), 0u);
  ASSERT_TRUE(obs::trace_stream_close());
  EXPECT_EQ(slurp(path), obs::trace_to_json());  // empty one-shot doc
  std::remove(path.c_str());
}

TEST(TraceStream, OpenRejectsSecondStreamAndBadPath) {
  fresh_trace();
  obs::trace_disable();
  const std::string path = testing::TempDir() + "obs_stream_dup.json";
  ASSERT_TRUE(obs::trace_stream_open(path));
  EXPECT_FALSE(obs::trace_stream_open(path));  // one stream at a time
  ASSERT_TRUE(obs::trace_stream_close());
  EXPECT_FALSE(obs::trace_stream_close());  // nothing active anymore
  EXPECT_FALSE(obs::trace_stream_open("/no/such/dir/trace.json"));
  std::remove(path.c_str());
}

#else  // !NA_TRACE_ENABLED

TEST(Trace, CompiledOut) { EXPECT_FALSE(obs::trace_compiled_in()); }

TEST(Trace, MacrosCompileToNothing) {
  // The instrumentation macros must vanish: even with the recorder
  // enabled, spans and instants record no events.
  obs::trace_reset();
  obs::trace_enable();
  {
    NA_TRACE_SCOPE("gone");
    NA_TRACE_SPAN(span, "also_gone");
    span.arg("n", 1);
    NA_TRACE_INSTANT("gone_too", {"x", 2});
    NA_TRACE_MARK("mark");
  }
  obs::trace_disable();
  EXPECT_TRUE(obs::trace_events().empty());
  // The emitter still produces a valid (empty) document for CLI wiring.
  EXPECT_NO_THROW(JsonParser(obs::trace_to_json()).parse());
}

TEST(TraceStreamOff, StreamStillWritesValidEmptyDocument) {
  // The streaming API stays linkable with tracing compiled out (na_serve
  // builds in the NA_TRACE=OFF matrix): nothing is ever buffered, every
  // flush writes zero events, and the file is a valid empty document.
  obs::trace_reset();
  obs::trace_enable();
  const std::string path = testing::TempDir() + "obs_stream_off.json";
  ASSERT_TRUE(obs::trace_stream_open(path));
  { NA_TRACE_SCOPE("vanished"); }
  EXPECT_EQ(obs::trace_buffered_events(), 0u);
  EXPECT_EQ(obs::trace_stream_flush(), 0u);
  ASSERT_TRUE(obs::trace_stream_close());
  obs::trace_disable();
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), obs::trace_to_json());
  EXPECT_NO_THROW(JsonParser(ss.str()).parse());
  std::remove(path.c_str());
}

#endif  // NA_TRACE_ENABLED

// ----- metrics registry + JSON writer ---------------------------------------

TEST(Metrics, RegistryOrderAndLookup) {
  obs::MetricsRegistry reg;
  reg.set("b.count", 2);
  reg.set("a.count", 1);
  reg.add("b.count", 3);  // accumulate, not reorder
  reg.set("t.ms", 1.5);
  ASSERT_NE(reg.find("b.count"), nullptr);
  EXPECT_EQ(reg.find("b.count")->i, 5);
  EXPECT_EQ(reg.find("missing"), nullptr);

  // Insertion order survives into the text emission.
  const std::string text = reg.to_text();
  EXPECT_LT(text.find("b.count"), text.find("a.count"));
  EXPECT_NE(text.find("1.500"), std::string::npos);
}

TEST(Metrics, JsonEmissionCarriesSchemaVersion) {
  obs::MetricsRegistry reg;
  reg.set("route.nets_routed", 222);
  reg.set("quote\"key", 1);  // escaping must hold
  Json root;
  ASSERT_NO_THROW(root = JsonParser(reg.to_json()).parse());
  const Json* ver = root.find("schema_version");
  ASSERT_NE(ver, nullptr);
  EXPECT_EQ(std::stoi(ver->str), obs::MetricsRegistry::kSchemaVersion);
  const Json* metrics = root.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const Json* routed = metrics->find("route.nets_routed");
  ASSERT_NE(routed, nullptr);
  EXPECT_EQ(std::stoi(routed->str), 222);
  EXPECT_NE(metrics->find("quote\"key"), nullptr);
}

TEST(Metrics, MergePrefixedKeepsRunsApart) {
  obs::MetricsRegistry one, both;
  one.set("route.nets_routed", 10);
  both.merge_prefixed(one, "fig66.");
  one.set("route.nets_routed", 20);
  both.merge_prefixed(one, "fig67.");
  ASSERT_NE(both.find("fig66.route.nets_routed"), nullptr);
  ASSERT_NE(both.find("fig67.route.nets_routed"), nullptr);
  EXPECT_EQ(both.find("fig66.route.nets_routed")->i, 10);
  EXPECT_EQ(both.find("fig67.route.nets_routed")->i, 20);
}

TEST(Metrics, AbsorbSurfacesRespeculationCounters) {
  // Satellite contract: a --stats json emission must carry the
  // re-speculation counters end-to-end.
  ParallelRouteStats spec;
  spec.nets_respeculated = 7;
  spec.respec_hits = 5;
  spec.respec_stale = 2;
  obs::MetricsRegistry reg;
  obs::absorb(reg, spec);
  Json root;
  ASSERT_NO_THROW(root = JsonParser(reg.to_json()).parse());
  const Json* metrics = root.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find("route.spec.nets_respeculated"), nullptr);
  EXPECT_EQ(std::stoi(metrics->find("route.spec.nets_respeculated")->str), 7);
  EXPECT_EQ(std::stoi(metrics->find("route.spec.respec_hits")->str), 5);
  EXPECT_EQ(std::stoi(metrics->find("route.spec.respec_stale")->str), 2);
  ASSERT_NE(metrics->find("route.pool.peak_queued"), nullptr);
  ASSERT_NE(metrics->find("route.pool.urgent_drains"), nullptr);
}

// ----- diagnostics -----------------------------------------------------------

TEST(Diag, RateLimitsPerCategory) {
  const std::string path = testing::TempDir() + "obs_test_diag.log";
  obs::diag_reset();
  obs::diag_set_sink_for_testing(path.c_str());
  for (int i = 0; i < 10; ++i) {
    obs::diagf("test.cat", 3, "line %d net=%d", i, 100 + i);
  }
  obs::diag_set_sink_for_testing(nullptr);
  EXPECT_EQ(obs::diag_emitted("test.cat"), 10);

  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string l; std::getline(in, l);) lines.push_back(l);
  std::remove(path.c_str());
  // 3 budgeted lines + 1 suppression notice, then silence.
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "na[test.cat] line 0 net=100");
  EXPECT_EQ(lines[2], "na[test.cat] line 2 net=102");
  EXPECT_NE(lines[3].find("suppress"), std::string::npos);
  obs::diag_reset();
}

// ----- thread-pool scheduling counters --------------------------------------

TEST(PoolStats, CountsQueueDepthAndUrgentDrains) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) pool.submit([] {});
  pool.submit_urgent([] {});
  pool.wait_idle();
  const ThreadPool::Stats s = pool.stats();
  EXPECT_GE(s.peak_queued, 1);
  EXPECT_EQ(s.urgent_submitted, 1);
  EXPECT_LE(s.urgent_drained, s.urgent_submitted);
}

// ----- pipeline guards -------------------------------------------------------

RouterOptions life_router_options(int threads) {
  RouterOptions opt;
  opt.margin = 12;
  opt.order_criterion = static_cast<int>(NetOrderCriterion::LongestFirst);
  opt.threads = threads;
  return opt;
}

/// Tracing must be pure observation: a traced routing run yields the same
/// bytes (diagram and report) as an untraced one, at every thread count.
TEST(TraceGuard, TracedRunByteIdenticalToUntraced) {
  const Network net = gen::life_network();
  std::string baseline;
  RouteReport baseline_report;
  for (int threads : {1, 2, 4}) {
    Diagram untraced(net);
    gen::life_hand_placement(untraced);
    obs::trace_disable();
    const RouteReport r0 = route_all(untraced, life_router_options(threads));
    const std::string s0 = to_escher_diagram(untraced, "guard");

    Diagram traced(net);
    gen::life_hand_placement(traced);
    obs::trace_reset();
    obs::trace_enable();
    const RouteReport r1 = route_all(traced, life_router_options(threads));
    obs::trace_disable();
    const std::string s1 = to_escher_diagram(traced, "guard");

    EXPECT_EQ(s0, s1) << "threads=" << threads;
    EXPECT_EQ(r0.nets_routed, r1.nets_routed);
    EXPECT_EQ(r0.nets_failed, r1.nets_failed);
    EXPECT_EQ(r0.connections_made, r1.connections_made);
    EXPECT_EQ(r0.connections_failed, r1.connections_failed);
    EXPECT_EQ(r0.retried_connections, r1.retried_connections);
    EXPECT_EQ(r0.total_expansions, r1.total_expansions);
    EXPECT_EQ(r0.failed_nets, r1.failed_nets);
    if (threads == 1) {
      baseline = s0;
      baseline_report = r0;
    } else {
      EXPECT_EQ(s0, baseline) << "threads=" << threads << " vs threads=1";
      EXPECT_EQ(r0.total_expansions, baseline_report.total_expansions);
    }
    if (obs::trace_compiled_in()) {
      EXPECT_FALSE(obs::trace_events().empty());
    } else {
      EXPECT_TRUE(obs::trace_events().empty());
    }
    obs::trace_reset();
  }
}

/// Acceptance: a traced automatic LIFE generation emits a Chrome trace
/// that parses and whose spans cover the six placement phases, routing,
/// and validation.
TEST(TraceGuard, TracedLifeRunCoversPipelinePhases) {
  if (!obs::trace_compiled_in()) {
    GTEST_SKIP() << "tracing compiled out (NA_TRACE=OFF)";
  }
  const Network net = gen::life_network();
  Diagram dia(net);
  GeneratorOptions opt;  // the fig-6.7 automatic LIFE settings
  opt.placer.max_part_size = 3;
  opt.placer.max_box_size = 3;
  opt.placer.module_spacing = 1;
  opt.placer.partition_spacing = 2;
  opt.router.margin = 12;
  opt.router.order_criterion =
      static_cast<int>(NetOrderCriterion::LongestFirst);
  opt.router.threads = 2;

  obs::trace_reset();
  obs::trace_enable();
  const GeneratorResult result = generate(dia, opt);
  const auto problems = validate_diagram(dia);
  obs::trace_disable();
  EXPECT_TRUE(problems.empty());
  EXPECT_GT(result.route.nets_routed, 0);

  const std::string json = obs::trace_to_json();
  Json root;
  ASSERT_NO_THROW(root = JsonParser(json).parse());
  const Json* list = root.find("traceEvents");
  ASSERT_NE(list, nullptr);

  std::set<std::string> names;
  for (const Json& ev : list->array) {
    const Json* name = ev.find("name");
    ASSERT_NE(name, nullptr);
    names.insert(name->str);
    // Every event round-trips the Chrome schema basics.
    ASSERT_NE(ev.find("ph"), nullptr);
    ASSERT_NE(ev.find("ts"), nullptr);
  }
  // The six placement steps of the paper's PABLO...
  for (const char* phase :
       {"place.partition", "place.box_form", "place.module_place",
        "place.box_place", "place.partition_place", "place.terminal_place"}) {
    EXPECT_TRUE(names.count(phase)) << "missing span: " << phase;
  }
  // ...the routing pass with its per-net tasks, and validation.
  EXPECT_TRUE(names.count("place"));
  EXPECT_TRUE(names.count("route"));
  EXPECT_TRUE(names.count("route.pass1"));
  EXPECT_TRUE(names.count("route.net"));
  EXPECT_TRUE(names.count("route.commit"));
  EXPECT_TRUE(names.count("validate.full"));
  obs::trace_reset();
}

}  // namespace
}  // namespace na
