// Unit tests for the geometry substrate: points, directions, intervals,
// rectangles, segments, rotations and terminal-side derivation.
#include <gtest/gtest.h>

#include "geom/orientation.hpp"
#include "geom/rect.hpp"

namespace na::geom {
namespace {

TEST(Point, Arithmetic) {
  EXPECT_EQ((Point{1, 2} + Point{3, 4}), (Point{4, 6}));
  EXPECT_EQ((Point{1, 2} - Point{3, 4}), (Point{-2, -2}));
  EXPECT_EQ((Point{2, 3} * 3), (Point{6, 9}));
  Point p{1, 1};
  p += {2, 2};
  EXPECT_EQ(p, (Point{3, 3}));
  p -= {1, 0};
  EXPECT_EQ(p, (Point{2, 3}));
}

TEST(Point, Distances) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({-2, -2}, {2, 2}), 8);
  EXPECT_EQ(dist2({0, 0}, {3, 4}), 25);
  EXPECT_EQ(dist2({1, 1}, {1, 1}), 0);
}

TEST(Dir, DeltaAndOpposite) {
  for (Dir d : kAllDirs) {
    EXPECT_EQ(delta(d) + delta(opposite(d)), (Point{0, 0}));
    EXPECT_EQ(opposite(opposite(d)), d);
  }
  EXPECT_EQ(delta(Dir::Right), (Point{1, 0}));
  EXPECT_EQ(delta(Dir::Up), (Point{0, 1}));
}

TEST(Dir, Orientation) {
  EXPECT_TRUE(is_horizontal(Dir::Left));
  EXPECT_TRUE(is_horizontal(Dir::Right));
  EXPECT_TRUE(is_vertical(Dir::Up));
  EXPECT_TRUE(is_vertical(Dir::Down));
}

TEST(Dir, StepDir) {
  EXPECT_EQ(step_dir({0, 0}, {1, 0}), Dir::Right);
  EXPECT_EQ(step_dir({0, 0}, {-1, 0}), Dir::Left);
  EXPECT_EQ(step_dir({0, 0}, {0, 1}), Dir::Up);
  EXPECT_EQ(step_dir({0, 0}, {0, -1}), Dir::Down);
}

TEST(Interval, Basics) {
  const Interval i{2, 5};
  EXPECT_FALSE(i.empty());
  EXPECT_EQ(i.length(), 3);
  EXPECT_TRUE(i.contains(2));
  EXPECT_TRUE(i.contains(5));
  EXPECT_FALSE(i.contains(6));
  EXPECT_TRUE(Interval{}.empty());
  EXPECT_EQ(Interval{}.length(), 0);
}

TEST(Interval, Overlap) {
  EXPECT_TRUE((Interval{0, 3}).overlaps({3, 5}));
  EXPECT_FALSE((Interval{0, 3}).overlaps({4, 5}));
  EXPECT_FALSE((Interval{0, 3}).overlaps(Interval{}));
  EXPECT_EQ((Interval{0, 5}).intersect({3, 9}), (Interval{3, 5}));
  EXPECT_TRUE((Interval{4, 5}).intersect({0, 3}).empty());
  EXPECT_EQ((Interval{0, 1}).hull({4, 5}), (Interval{0, 5}));
  EXPECT_EQ((Interval{2, 3}).expanded(2), (Interval{0, 5}));
}

TEST(Rect, Basics) {
  const Rect r = Rect::from_size({1, 2}, {3, 4});
  EXPECT_EQ(r.lo, (Point{1, 2}));
  EXPECT_EQ(r.hi, (Point{4, 6}));
  EXPECT_EQ(r.width(), 3);
  EXPECT_EQ(r.height(), 4);
  EXPECT_TRUE(r.contains(Point{1, 2}));
  EXPECT_TRUE(r.contains(Point{4, 6}));
  EXPECT_FALSE(r.contains(Point{5, 6}));
  EXPECT_TRUE(Rect{}.empty());
}

TEST(Rect, OverlapIsClosed) {
  const Rect a = Rect::from_size({0, 0}, {2, 2});
  // Touching borders share grid points: closed rectangles overlap.
  EXPECT_TRUE(a.overlaps(Rect::from_size({2, 0}, {2, 2})));
  EXPECT_FALSE(a.overlaps(Rect::from_size({3, 0}, {2, 2})));
  EXPECT_TRUE(a.overlaps(a));
  EXPECT_FALSE(a.overlaps(Rect{}));
}

TEST(Rect, HullAndExpand) {
  const Rect a = Rect::from_size({0, 0}, {1, 1});
  const Rect b = Rect::from_size({5, 5}, {1, 1});
  EXPECT_EQ(a.hull(b), (Rect{{0, 0}, {6, 6}}));
  EXPECT_EQ(Rect{}.hull(a), a);
  EXPECT_EQ(a.hull(Point{9, 0}), (Rect{{0, 0}, {9, 1}}));
  EXPECT_EQ(a.expanded(2), (Rect{{-2, -2}, {3, 3}}));
}

TEST(Rect, Boundary) {
  const Rect r = Rect::from_size({0, 0}, {4, 4});
  EXPECT_TRUE(r.on_boundary({0, 2}));
  EXPECT_TRUE(r.on_boundary({4, 4}));
  EXPECT_FALSE(r.on_boundary({2, 2}));
  EXPECT_FALSE(r.on_boundary({5, 2}));
}

TEST(Segment, Basics) {
  const Segment h{{0, 3}, {5, 3}};
  EXPECT_TRUE(h.horizontal());
  EXPECT_FALSE(h.vertical());
  EXPECT_EQ(h.length(), 5);
  EXPECT_TRUE(h.contains({2, 3}));
  EXPECT_FALSE(h.contains({2, 4}));
  const Segment v{{1, 5}, {1, 1}};
  EXPECT_TRUE(v.vertical());
  EXPECT_EQ(v.bounds(), (Rect{{1, 1}, {1, 5}}));
  EXPECT_TRUE((Segment{{2, 2}, {2, 2}}).degenerate());
}

TEST(Rotation, Sizes) {
  EXPECT_EQ(rotate_size({3, 5}, Rot::R0), (Point{3, 5}));
  EXPECT_EQ(rotate_size({3, 5}, Rot::R90), (Point{5, 3}));
  EXPECT_EQ(rotate_size({3, 5}, Rot::R180), (Point{3, 5}));
  EXPECT_EQ(rotate_size({3, 5}, Rot::R270), (Point{5, 3}));
}

TEST(Rotation, PointsStayInRect) {
  const Point size{4, 2};
  for (Rot r : kAllRots) {
    const Point rs = rotate_size(size, r);
    for (int x = 0; x <= size.x; ++x) {
      for (int y = 0; y <= size.y; ++y) {
        const Point p = rotate_point({x, y}, size, r);
        EXPECT_GE(p.x, 0);
        EXPECT_GE(p.y, 0);
        EXPECT_LE(p.x, rs.x);
        EXPECT_LE(p.y, rs.y);
      }
    }
  }
}

TEST(Rotation, PointExamples) {
  const Point size{4, 2};
  // Lower-left corner cycles around the rectangle under CCW rotation.
  EXPECT_EQ(rotate_point({0, 0}, size, Rot::R90), (Point{2, 0}));
  EXPECT_EQ(rotate_point({0, 0}, size, Rot::R180), (Point{4, 2}));
  EXPECT_EQ(rotate_point({0, 0}, size, Rot::R270), (Point{0, 4}));
  EXPECT_EQ(rotate_point({4, 1}, size, Rot::R90), (Point{1, 4}));
}

TEST(Rotation, R180IsTwiceR90) {
  const Point size{6, 3};
  const Point p{6, 2};
  const Point once = rotate_point(p, size, Rot::R90);
  const Point twice = rotate_point(once, rotate_size(size, Rot::R90), Rot::R90);
  EXPECT_EQ(twice, rotate_point(p, size, Rot::R180));
}

TEST(Rotation, Sides) {
  EXPECT_EQ(rotate_side(Side::Right, Rot::R90), Side::Up);
  EXPECT_EQ(rotate_side(Side::Up, Rot::R90), Side::Left);
  EXPECT_EQ(rotate_side(Side::Left, Rot::R90), Side::Down);
  EXPECT_EQ(rotate_side(Side::Down, Rot::R90), Side::Right);
  for (Side s : kAllDirs) {
    EXPECT_EQ(rotate_side(s, Rot::R0), s);
    EXPECT_EQ(rotate_side(s, Rot::R180), opposite(s));
  }
}

TEST(Rotation, SideMatchesPointTransform) {
  // A terminal's derived side after rotating its position must equal the
  // rotated side.
  const Point size{4, 6};
  const Point terminals[] = {{0, 3}, {4, 2}, {2, 0}, {1, 6}};
  for (Point t : terminals) {
    const Side s = side_of(t, size);
    for (Rot r : kAllRots) {
      const Point rt = rotate_point(t, size, r);
      EXPECT_EQ(side_of(rt, rotate_size(size, r)), rotate_side(s, r))
          << "terminal " << to_string(t) << " rot " << static_cast<int>(r);
    }
  }
}

TEST(Rotation, RotationTaking) {
  for (Side from : kAllDirs) {
    for (Side to : kAllDirs) {
      EXPECT_EQ(rotate_side(from, rotation_taking(from, to)), to);
    }
  }
}

TEST(SideOf, Perimeter) {
  const Point size{4, 2};
  EXPECT_EQ(side_of({0, 1}, size), Side::Left);
  EXPECT_EQ(side_of({4, 1}, size), Side::Right);
  EXPECT_EQ(side_of({2, 0}, size), Side::Down);
  EXPECT_EQ(side_of({2, 2}, size), Side::Up);
  EXPECT_TRUE(on_perimeter({0, 0}, size));
  EXPECT_TRUE(on_perimeter({4, 2}, size));
  EXPECT_TRUE(on_perimeter({2, 0}, size));
  EXPECT_FALSE(on_perimeter({2, 1}, size));
  EXPECT_FALSE(on_perimeter({5, 1}, size));
  EXPECT_FALSE(on_perimeter({-1, 0}, size));
}

TEST(Strings, Formatting) {
  EXPECT_EQ(to_string(Point{1, -2}), "(1,-2)");
  EXPECT_EQ(to_string(Dir::Left), "left");
  EXPECT_EQ(to_string(Rot::R270), "R270");
  EXPECT_EQ(to_string(Rect{{0, 0}, {1, 1}}), "[(0,0)..(1,1)]");
  EXPECT_EQ(to_string(Segment{{0, 0}, {3, 0}}), "(0,0)-(3,0)");
}

}  // namespace
}  // namespace na::geom
