// Malformed-input tests for the PABLO/EUREKA flag parser: garbage values,
// trailing junk, negative sizes/spacings/margins, and missing values must
// all produce a one-line std::runtime_error naming the flag — never a raw
// std::invalid_argument out of std::stoi, and never a silently accepted
// wrong value.
#include <gtest/gtest.h>

#include "core/options.hpp"

namespace na {
namespace {

GeneratorOptions parse(std::initializer_list<const char*> args) {
  GeneratorOptions opt;
  parse_generator_args(std::vector<std::string>(args.begin(), args.end()), opt);
  return opt;
}

void expect_rejected(std::initializer_list<const char*> args,
                     const std::string& needle) {
  GeneratorOptions opt;
  try {
    parse_generator_args(std::vector<std::string>(args.begin(), args.end()), opt);
    FAIL() << "expected a runtime_error mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
  } catch (const std::exception& e) {
    FAIL() << "wrong exception type: " << e.what();
  }
}

TEST(OptionsParse, ValidFlagsStillParse) {
  const GeneratorOptions opt =
      parse({"-p", "5", "-b", "3", "-c", "8", "-e", "2", "-i", "1", "-m", "12",
             "--threads", "4", "--respec", "1"});
  EXPECT_EQ(opt.placer.max_part_size, 5);
  EXPECT_EQ(opt.placer.max_box_size, 3);
  EXPECT_EQ(opt.placer.max_connections, 8);
  EXPECT_EQ(opt.placer.partition_spacing, 2);
  EXPECT_EQ(opt.placer.box_spacing, 1);
  EXPECT_EQ(opt.router.margin, 12);
  EXPECT_EQ(opt.router.threads, 4);
  EXPECT_EQ(opt.router.respec_budget, 1);
}

TEST(OptionsParse, GarbageValueNamesTheFlag) {
  expect_rejected({"-p", "foo"}, "bad value 'foo' for -p");
  expect_rejected({"-b", "x"}, "bad value 'x' for -b");
  expect_rejected({"-m", "wide"}, "bad value 'wide' for -m");
  expect_rejected({"--threads", "many"}, "bad value 'many' for --threads");
}

TEST(OptionsParse, TrailingGarbageIsRejectedNotTruncated) {
  // std::stoi would silently accept "5x" as 5; the strict parser must not.
  expect_rejected({"-p", "5x"}, "bad value '5x' for -p");
  expect_rejected({"-c", "8 "}, "-c");
  expect_rejected({"-e", "2.5"}, "bad value '2.5' for -e");
}

TEST(OptionsParse, NegativeSizesSpacingsAndMarginsAreRejected) {
  expect_rejected({"-p", "-5"}, "bad value '-5' for -p");
  expect_rejected({"-b", "-1"}, "-b");
  expect_rejected({"-c", "-3"}, "-c");
  expect_rejected({"-e", "-2"}, "-e");
  expect_rejected({"-i", "-1"}, "-i");
  expect_rejected({"-m", "-4"}, "-m");
  expect_rejected({"--threads", "-2"}, "--threads");
  expect_rejected({"--respec", "-1"}, "--respec");
}

TEST(OptionsParse, OverflowIsRejected) {
  expect_rejected({"-p", "99999999999999999999"}, "-p");
}

TEST(OptionsParse, MissingValueIsStillDiagnosed) {
  expect_rejected({"-p"}, "missing value after -p");
}

TEST(OptionsParse, ModuleSpacingFormOfDashS) {
  // "-s 3" is module spacing; "-s" alone flips the cost order.  The
  // numeric form starts with a digit, so "-s -5" selects the cost-order
  // form and then rejects "-5" as an unknown flag rather than storing a
  // negative spacing.
  const GeneratorOptions spaced = parse({"-s", "3"});
  EXPECT_EQ(spaced.placer.module_spacing, 3);
  const GeneratorOptions order = parse({"-s"});
  EXPECT_EQ(order.router.order, CostOrder::BendsLengthCrossings);
  expect_rejected({"-s", "3x"}, "bad value '3x' for -s");
  expect_rejected({"-s", "-5"}, "unknown flag");
}

TEST(OptionsParse, ParseIntArgIsStrict) {
  EXPECT_EQ(parse_int_arg("42", "-x"), 42);
  EXPECT_EQ(parse_int_arg("-7", "-x"), -7);  // no floor: negatives allowed
  EXPECT_THROW(parse_int_arg("", "-x"), std::runtime_error);
  EXPECT_THROW(parse_int_arg("4 2", "-x"), std::runtime_error);
  EXPECT_THROW(parse_int_arg("+", "-x"), std::runtime_error);
  EXPECT_THROW(parse_int_arg("0x10", "-x"), std::runtime_error);
  EXPECT_THROW(parse_int_arg("7", "-x", 8), std::runtime_error);
  EXPECT_EQ(parse_int_arg("8", "-x", 8), 8);
}

}  // namespace
}  // namespace na
