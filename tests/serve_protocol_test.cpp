// Malformed-input corpus for the na_serve wire protocol: the JSON value
// parser and parse_request must reject garbage with structured errors (and
// the right error codes) instead of crashing or accepting nonsense.
#include <gtest/gtest.h>

#include <string>

#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/session_host.hpp"

using namespace na::serve;

// ----- JSON value parser -----------------------------------------------------

TEST(ServeJson, ParsesScalars) {
  EXPECT_EQ(parse_json("null").kind, JsonValue::kNull);
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_EQ(parse_json("\"hi\"").text, "hi");
  EXPECT_EQ(parse_json("  42 ").text, "42");
  long long n = 0;
  EXPECT_TRUE(parse_json("-123").as_int(&n));
  EXPECT_EQ(n, -123);
}

TEST(ServeJson, ParsesContainers) {
  const JsonValue v = parse_json(R"({"a":[1,2,3],"b":{"c":"d"},"e":null})");
  ASSERT_EQ(v.kind, JsonValue::kObject);
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("a")->array.size(), 3u);
  ASSERT_NE(v.find("b"), nullptr);
  ASSERT_NE(v.find("b")->find("c"), nullptr);
  EXPECT_EQ(v.find("b")->find("c")->text, "d");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ServeJson, DecodesEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd")").text, "a\"b\\c\nd");
  EXPECT_EQ(parse_json(R"("\u0041\u00e9")").text, "A\u00e9");  // A, é
  EXPECT_EQ(parse_json(R"("\t\r\b\f\/")").text, "\t\r\b\f/");
}

TEST(ServeJson, PairsSurrogateEscapes) {
  // RFC 8259 section 7: non-BMP code points travel as \u-escaped
  // surrogate pairs.  U+1F600 = D83D DE00 -> 4-byte UTF-8.
  EXPECT_EQ(parse_json(R"("\uD83D\uDE00")").text, "\xF0\x9F\x98\x80");
  EXPECT_EQ(parse_json(R"("x\uD83D\uDE00y")").text, "x\xF0\x9F\x98\x80y");
  // U+10000 (first supplementary) and U+10FFFF (last).
  EXPECT_EQ(parse_json(R"("\uD800\uDC00")").text, "\xF0\x90\x80\x80");
  EXPECT_EQ(parse_json(R"("\uDBFF\uDFFF")").text, "\xF4\x8F\xBF\xBF");
  // BMP neighbours of the surrogate range still decode alone.
  EXPECT_EQ(parse_json(R"("\uD7FF\uE000")").text, "\xED\x9F\xBF\xEE\x80\x80");
}

TEST(ServeJson, RejectsUnpairedSurrogates) {
  const char* bad[] = {
      R"("\uD83D")",         // lone high at end of string
      R"("\uD83Dx")",        // high followed by a plain char
      R"("\uD83D\n")",       // high followed by a non-\u escape
      R"("\uD83D\u0041")",   // high followed by a non-surrogate \u
      R"("\uD83D\uD83D")",   // high followed by another high
      R"("\uDE00")",         // lone low
      R"("\uDE00\uD83D")",   // pair in the wrong order
  };
  for (const char* text : bad) {
    EXPECT_THROW(parse_json(text), std::runtime_error) << "input: " << text;
  }
}

TEST(ServeJson, SurrogateErrorsCarryByteOffset) {
  try {
    parse_json(R"({"a": "\uDE00"})");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    // The cursor sits just past the 4 hex digits of the offending escape.
    EXPECT_NE(std::string(e.what()).find("byte 13"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("surrogate"), std::string::npos)
        << e.what();
  }
}

TEST(ServeJson, AsIntIsStrict) {
  long long n = 0;
  EXPECT_FALSE(parse_json("1.5").as_int(&n));
  EXPECT_FALSE(parse_json("1e3").as_int(&n));
  EXPECT_FALSE(parse_json("\"7\"").as_int(&n));   // strings are not numbers
  EXPECT_FALSE(parse_json("99999999999999999999").as_int(&n));  // overflow
  EXPECT_TRUE(parse_json("9223372036854775807").as_int(&n));
}

TEST(ServeJson, RejectsMalformed) {
  const char* bad[] = {
      "",
      "   ",
      "{",
      "[1,2",
      "{\"a\":}",
      "{\"a\" 1}",
      "{\"a\":1,}",
      "[1,]",
      "\"unterminated",
      "\"bad\\q escape\"",
      "\"\\u12g4\"",
      "tru",
      "nul",
      "+1",
      "01",
      "1.",
      "1e",
      "--3",
      "{} garbage",
      "[1] [2]",
      "\x01",
  };
  for (const char* text : bad) {
    EXPECT_THROW(parse_json(text), std::runtime_error) << "input: " << text;
  }
}

TEST(ServeJson, RejectsRawControlCharInString) {
  EXPECT_THROW(parse_json(std::string("\"a\nb\"")), std::runtime_error);
  EXPECT_THROW(parse_json(std::string("\"a\x01b\"")), std::runtime_error);
}

TEST(ServeJson, DepthCapStopsStackExhaustion) {
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += '[';
  EXPECT_THROW(parse_json(deep), std::runtime_error);
  // At the cap exactly: fine.
  std::string ok(kMaxJsonDepth, '[');
  ok += std::string(kMaxJsonDepth, ']');
  EXPECT_NO_THROW(parse_json(ok));
  std::string over(kMaxJsonDepth + 1, '[');
  over += std::string(kMaxJsonDepth + 1, ']');
  EXPECT_THROW(parse_json(over), std::runtime_error);
}

TEST(ServeJson, ReportsByteOffset) {
  try {
    parse_json("{\"a\": @}");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte 6"), std::string::npos)
        << e.what();
  }
}

// ----- request parsing -------------------------------------------------------

namespace {

const char* code_of(const std::string& line) {
  try {
    parse_request(line);
  } catch (const ProtocolError& e) {
    return e.code();
  }
  return nullptr;  // parsed fine
}

}  // namespace

TEST(ServeProtocol, ParsesEveryOp) {
  EXPECT_EQ(parse_request(R"({"op":"ping"})").op, Op::kPing);
  EXPECT_EQ(parse_request(R"({"op":"stats"})").op, Op::kStats);
  EXPECT_EQ(parse_request(R"({"op":"shutdown"})").op, Op::kShutdown);

  const Request open =
      parse_request(R"({"op":"open","id":7,"session":"s","design":"life"})");
  EXPECT_EQ(open.op, Op::kOpen);
  EXPECT_EQ(open.id, 7);
  EXPECT_EQ(open.session, "s");
  EXPECT_EQ(open.design, "life");
  EXPECT_FALSE(open.restore);

  const Request restore =
      parse_request(R"({"op":"open","session":"s","restore":true})");
  EXPECT_TRUE(restore.restore);

  const Request get = parse_request(R"({"op":"get","session":"s"})");
  EXPECT_EQ(get.format, "escher");  // default

  EXPECT_EQ(parse_request(R"({"op":"save","session":"s"})").op, Op::kSave);
  EXPECT_EQ(parse_request(R"({"op":"close","session":"s"})").op, Op::kClose);
}

TEST(ServeProtocol, ParsesEveryEditKind) {
  const Request req = parse_request(R"({"op":"edit","session":"s","edits":[
    {"kind":"add_module","name":"m","template":"AND2","w":6,"h":4},
    {"kind":"remove_module","name":"m"},
    {"kind":"resize_module","name":"m","w":8,"h":4},
    {"kind":"add_terminal","module":"m","name":"t","type":"in","x":0,"y":2},
    {"kind":"move_terminal","module":"m","term":"t","x":0,"y":3},
    {"kind":"connect","net":"n","module":"m","term":"t"},
    {"kind":"connect","net":"n","term":"sys"},
    {"kind":"disconnect","module":"m","term":"t"},
    {"kind":"remove_net","net":"n"},
    {"kind":"add_system_terminal","name":"clk","type":"in"},
    {"kind":"remove_system_terminal","name":"clk"}]})");
  ASSERT_EQ(req.edits.size(), 11u);
  EXPECT_EQ(req.edits[0].kind, EditCmd::Kind::kAddModule);
  EXPECT_EQ(req.edits[0].template_name, "AND2");
  EXPECT_EQ(req.edits[0].pos.x, 6);
  EXPECT_EQ(req.edits[3].type, na::TermType::In);
  EXPECT_EQ(req.edits[6].module, "");  // system-terminal connect
  EXPECT_EQ(req.edits[10].kind, EditCmd::Kind::kRemoveSystemTerminal);
}

TEST(ServeProtocol, ErrorCodesAreStable) {
  EXPECT_STREQ(code_of("{nope"), err::kBadJson);
  EXPECT_STREQ(code_of("[1,2,3]"), err::kBadJson);  // not an object
  EXPECT_STREQ(code_of(R"({"op":"frobnicate"})"), err::kUnknownOp);
  EXPECT_STREQ(code_of(R"({"op":42})"), err::kBadRequest);
  EXPECT_STREQ(code_of(R"({"session":"s"})"), err::kBadRequest);  // no op
  EXPECT_STREQ(code_of(R"({"op":"open","session":"s"})"),
               err::kBadRequest);  // neither design nor restore
  EXPECT_STREQ(code_of(R"({"op":"edit","session":"s"})"), err::kBadRequest);
  EXPECT_STREQ(code_of(R"({"op":"edit","session":"s","edits":[]})"),
               err::kBadRequest);
  EXPECT_STREQ(code_of(R"({"op":"edit","session":"s","edits":[5]})"),
               err::kBadEdit);
  EXPECT_STREQ(code_of(R"({"op":"edit","session":"s","edits":[{"kind":"warp"}]})"),
               err::kBadEdit);
  EXPECT_STREQ(
      code_of(R"({"op":"edit","session":"s","edits":[{"kind":"add_module"}]})"),
      err::kBadRequest);  // missing fields
  EXPECT_STREQ(code_of(R"({"op":"get","session":"s","format":"png"})"),
               err::kBadRequest);
  EXPECT_STREQ(code_of(R"({"op":"ping","id":-3})"), err::kBadRequest);
  EXPECT_STREQ(code_of(R"({"op":"ping","id":1.5})"), err::kBadRequest);
}

TEST(ServeProtocol, BoundsAreEnforced) {
  // Coordinates outside ±2^24 are rejected before they reach geometry.
  EXPECT_STREQ(
      code_of(R"({"op":"edit","session":"s","edits":[)"
              R"({"kind":"resize_module","name":"m","w":99999999,"h":4}]})"),
      err::kBadRequest);
  const std::string long_name(300, 'x');
  EXPECT_STREQ(
      code_of(R"({"op":"get","session":")" + long_name + R"("})"),
      err::kBadRequest);
  EXPECT_STREQ(
      code_of(R"({"op":"edit","session":"s","edits":[)"
              R"({"kind":"add_terminal","module":"m","name":"t",)"
              R"("type":"sideways","x":0,"y":0}]})"),
      err::kBadRequest);
}

TEST(ServeProtocol, ErrorResponseShape) {
  EXPECT_EQ(error_response(err::kBadJson, "broken"),
            R"({"ok":false,"error":{"code":"bad_json","message":"broken"}})");
  EXPECT_EQ(
      error_response(err::kNoSuchSession, "nope", 9),
      R"({"ok":false,"id":9,"error":{"code":"no_such_session","message":"nope"}})");
  // Messages with quotes/control chars stay valid JSON.
  const std::string resp = error_response(err::kBadJson, "say \"hi\"\n");
  EXPECT_NE(resp.find(R"(say \"hi\"\n)"), std::string::npos);
}

TEST(ServeProtocol, DesignNetworkValidation) {
  EXPECT_NO_THROW(design_network("life"));
  EXPECT_NO_THROW(design_network("datapath:8"));
  EXPECT_THROW(design_network("espresso"), ProtocolError);
  EXPECT_THROW(design_network("datapath:0"), ProtocolError);
  EXPECT_THROW(design_network("datapath:abc"), ProtocolError);
  EXPECT_THROW(design_network("datapath:9999"), ProtocolError);
}
