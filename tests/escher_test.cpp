// Round-trip tests for the ESCHER-style diagram format: writer -> reader
// preserves placement and net geometry, enabling the historical -g
// (preplaced part from file) workflow.
#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "gen/chain.hpp"
#include "gen/controller.hpp"
#include "gen/life.hpp"
#include "route/net_order.hpp"
#include "schematic/escher_reader.hpp"
#include "schematic/escher_writer.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

TEST(EscherRoundTrip, PlacementOnly) {
  const Network net = gen::controller_network();
  Diagram dia(net);
  PlacerOptions opt;
  opt.max_part_size = 5;
  place(dia, opt);
  const std::string text = to_escher_diagram(dia, "ctrl16");
  const Diagram back = parse_escher_diagram(net, text);
  for (int m = 0; m < net.module_count(); ++m) {
    EXPECT_EQ(back.placed(m).pos, dia.placed(m).pos) << net.module(m).name;
    EXPECT_EQ(back.placed(m).rot, dia.placed(m).rot) << net.module(m).name;
  }
  for (TermId st : net.system_terms()) {
    EXPECT_EQ(back.term_pos(st), dia.term_pos(st));
  }
}

TEST(EscherRoundTrip, RoutedGeometryPreserved) {
  const Network net = gen::chain_network({});
  GeneratorOptions opt;
  opt.placer.max_part_size = 7;
  opt.placer.max_box_size = 7;
  GeneratorResult result;
  const Diagram dia = generate_diagram(net, opt, &result);
  ASSERT_EQ(result.route.nets_failed, 0);

  const Diagram back = parse_escher_diagram(net, to_escher_diagram(dia, "chain"));
  for (NetId n = 0; n < net.net_count(); ++n) {
    EXPECT_EQ(back.route(n).polylines, dia.route(n).polylines)
        << net.net(n).name;
    EXPECT_TRUE(back.route(n).prerouted);
  }
  // The restored diagram is still geometrically valid.
  EXPECT_TRUE(validate_diagram(back).empty());
}

// The full LIFE workload (27 modules, 222 nets, hand placement + routing)
// survives a write/read cycle position- and path-exact — the property
// RegenSession::adopt relies on when an editor session reloads its cached
// diagram from disk.
TEST(EscherRoundTrip, RoutedLifeDiagramSurvives) {
  const Network net = gen::life_network();
  Diagram dia(net);
  gen::life_hand_placement(dia);
  RouterOptions ropt;
  ropt.margin = 12;
  ropt.order_criterion = static_cast<int>(NetOrderCriterion::LongestFirst);
  route_all(dia, ropt);

  const Diagram back = parse_escher_diagram(net, to_escher_diagram(dia, "life"));
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    ASSERT_EQ(back.placed(m).pos, dia.placed(m).pos) << net.module(m).name;
    ASSERT_EQ(back.placed(m).rot, dia.placed(m).rot) << net.module(m).name;
  }
  for (TermId st : net.system_terms()) {
    ASSERT_EQ(back.term_pos(st), dia.term_pos(st));
  }
  for (NetId n = 0; n < net.net_count(); ++n) {
    ASSERT_EQ(back.route(n).polylines, dia.route(n).polylines)
        << net.net(n).name;
  }
  EXPECT_TRUE(validate_diagram(back).empty());
}

TEST(EscherRoundTrip, RestoredDiagramActsAsPreroute) {
  // Restore a routed diagram from file, then run the generator: nothing to
  // do, everything already connected.
  const Network net = gen::chain_network({});
  GeneratorOptions opt;
  opt.placer.max_part_size = 7;
  opt.placer.max_box_size = 7;
  const Diagram dia = generate_diagram(net, opt);
  Diagram back = parse_escher_diagram(net, to_escher_diagram(dia, "chain"));
  const RouteReport report = route_all(back, opt.router);
  EXPECT_EQ(report.connections_made, 0);
  EXPECT_EQ(report.nets_failed, 0);
  EXPECT_EQ(report.nets_routed, net.net_count());
}

TEST(EscherReader, Errors) {
  const Network net = gen::chain_network({});
  EXPECT_THROW(parse_escher_diagram(net, "no header\n"), std::runtime_error);
  EXPECT_THROW(parse_escher_diagram(net, "#TUE-ES-871\nbogus: 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_escher_diagram(net,
                                    "#TUE-ES-871\n"
                                    "subsys: 1 1 1 1 0 0 0 0 0 4 2 0 0\n"
                                    "instname: nosuch\n"
                                    "tempname: buf\nlibname: l\n"),
               std::runtime_error);
  EXPECT_THROW(parse_escher_diagram(net, "#TUE-ES-871\nsubsys: 1 1\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace na
