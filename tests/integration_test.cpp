// Integration tests: the complete net-list -> placement -> routing ->
// artwork pipeline on the paper's example networks, incremental re-entry
// (preplaced / prerouted), option parsing, and the writers on real output.
#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "core/options.hpp"
#include "gen/chain.hpp"
#include "gen/controller.hpp"
#include "gen/life.hpp"
#include "netlist/netlist_io.hpp"
#include "route/net_order.hpp"
#include "schematic/ascii_writer.hpp"
#include "schematic/escher_writer.hpp"
#include "schematic/svg_writer.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

TEST(Pipeline, ChainFullyRoutedZeroBends) {
  // Figure 6.1: a single string; with the level assignment fixed, the
  // chain nets are drawn with the minimum number of bends (the lemma) —
  // for the buf-style opposed terminals that means few bends overall.
  const Network net = gen::chain_network({});
  GeneratorOptions opt;
  opt.placer.max_part_size = 7;
  opt.placer.max_box_size = 7;
  GeneratorResult result;
  const Diagram dia = generate_diagram(net, opt, &result);
  EXPECT_EQ(result.route.nets_failed, 0);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
  // Chain nets between opposed terminals route straight.
  for (NetId n = 0; n < net.net_count(); ++n) {
    if (net.net(n).name.starts_with("chain")) {
      EXPECT_LE(dia.route(n).bend_count(), 2) << net.net(n).name;
    }
  }
}

TEST(Pipeline, ControllerAllConfigs) {
  const Network net = gen::controller_network();
  struct Cfg {
    int p, b;
  };
  for (const Cfg cfg : {Cfg{1, 1}, Cfg{5, 1}, Cfg{7, 5}}) {
    GeneratorOptions opt;
    opt.placer.max_part_size = cfg.p;
    opt.placer.max_box_size = cfg.b;
    opt.placer.max_connections = cfg.p > 1 ? 8 : 1 << 20;
    opt.router.margin = 6;
    GeneratorResult result;
    const Diagram dia = generate_diagram(net, opt, &result);
    EXPECT_EQ(result.route.nets_failed, 0)
        << "-p " << cfg.p << " -b " << cfg.b;
    EXPECT_TRUE(validate_diagram(dia, true).empty());
  }
}

TEST(Pipeline, LifeHandPlacementRoutesCompletely) {
  // Figure 6.6 equivalent (paper: 220/222 first pass).  With long nets
  // first, the reconstruction routes everything.
  const Network net = gen::life_network();
  Diagram dia(net);
  gen::life_hand_placement(dia);
  GeneratorOptions opt;
  opt.router.margin = 12;
  opt.router.order_criterion = static_cast<int>(NetOrderCriterion::LongestFirst);
  const GeneratorResult result = generate(dia, opt);
  EXPECT_EQ(result.route.nets_failed, 0);
  EXPECT_TRUE(validate_diagram(dia).empty());
}

TEST(Pipeline, LifeAutomaticNearlyComplete) {
  // Figure 6.7 equivalent (paper: 221/222): the automatic placement routes
  // all but a couple of nets.
  const Network net = gen::life_network();
  Diagram dia(net);
  GeneratorOptions opt;
  opt.placer.max_part_size = 3;
  opt.placer.max_box_size = 3;
  opt.placer.module_spacing = 1;
  opt.placer.partition_spacing = 2;
  opt.router.margin = 12;
  opt.router.order_criterion = static_cast<int>(NetOrderCriterion::LongestFirst);
  const GeneratorResult result = generate(dia, opt);
  EXPECT_LE(result.route.nets_failed, 4);
  EXPECT_GE(result.route.nets_routed, 218);
  EXPECT_TRUE(validate_diagram(dia).empty());
}

TEST(Pipeline, IncrementalMoveAndReroute) {
  // The figure 6.5 workflow: take a generated placement, move one module
  // by hand, reroute from scratch.
  const Network net = gen::controller_network();
  GeneratorOptions opt;
  opt.placer.max_part_size = 1;
  opt.router.margin = 6;
  GeneratorResult r1;
  Diagram dia = generate_diagram(net, opt, &r1);
  ASSERT_EQ(r1.route.nets_failed, 0);

  // Move the controller well away, clear nets, reroute.
  const ModuleId ctrl = *net.module_by_name("ctrl");
  const geom::Rect bounds = dia.placement_bounds();
  dia.clear_routes();
  dia.place_module(ctrl, {bounds.lo.x - 20, bounds.hi.y + 10});
  const RouteReport r2 = route_all(dia, opt.router);
  EXPECT_EQ(r2.nets_failed, 0);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

TEST(Pipeline, PreroutedNetsSurviveGeneration) {
  const Network net = gen::chain_network({});
  // First generate to learn terminal positions, then replay one net as a
  // user preroute and regenerate the rest.
  GeneratorOptions opt;
  opt.placer.max_part_size = 7;
  opt.placer.max_box_size = 7;
  Diagram first = generate_diagram(net, opt);
  const NetId n0 = *net.net_by_name("chain0");
  const auto kept = first.route(n0).polylines;
  ASSERT_FALSE(kept.empty());

  Diagram dia(net);
  // Replay the placement.
  for (int m = 0; m < net.module_count(); ++m) {
    dia.place_module(m, first.placed(m).pos, first.placed(m).rot);
  }
  for (TermId st : net.system_terms()) {
    dia.place_system_term(st, first.term_pos(st));
  }
  for (const auto& pl : kept) dia.add_polyline(n0, pl);
  dia.route(n0).prerouted = true;
  const GeneratorResult result = generate(dia, opt);
  EXPECT_EQ(result.route.nets_failed, 0);
  EXPECT_EQ(dia.route(n0).polylines, kept);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

TEST(Pipeline, FileFormatsEndToEnd) {
  // Network -> Appendix-A files -> parse -> generate -> all writers.
  const Network original = gen::controller_network();
  const NetlistFiles files = write_network(original);
  ModuleLibrary lib = ModuleLibrary::standard_cells();
  const Network net = parse_network(lib, files.call_file, files.io_file,
                                    files.netlist_file);
  GeneratorOptions opt;
  opt.placer.max_part_size = 5;
  opt.placer.max_connections = 8;
  opt.router.margin = 6;
  GeneratorResult result;
  const Diagram dia = generate_diagram(net, opt, &result);
  EXPECT_EQ(result.route.nets_failed, 0);
  EXPECT_GT(to_svg(dia).size(), 1000u);
  EXPECT_GT(to_ascii(dia).size(), 200u);
  EXPECT_GT(to_escher_diagram(dia, "ctrl16").size(), 1000u);
}

TEST(Options, PabloFlags) {
  GeneratorOptions opt;
  const auto rest = parse_generator_args(
      {"-p", "5", "-b", "3", "-c", "8", "-e", "2", "-i", "1", "-s", "2", "x.net"},
      opt);
  EXPECT_EQ(opt.placer.max_part_size, 5);
  EXPECT_EQ(opt.placer.max_box_size, 3);
  EXPECT_EQ(opt.placer.max_connections, 8);
  EXPECT_EQ(opt.placer.partition_spacing, 2);
  EXPECT_EQ(opt.placer.box_spacing, 1);
  EXPECT_EQ(opt.placer.module_spacing, 2);
  EXPECT_EQ(rest, std::vector<std::string>{"x.net"});
}

TEST(Options, EurekaFlags) {
  GeneratorOptions opt;
  parse_generator_args({"-s", "-L", "-m", "8", "-u", "-d", "-l", "-r"}, opt);
  EXPECT_EQ(opt.router.order, CostOrder::BendsLengthCrossings);
  EXPECT_EQ(opt.router.engine, Engine::Lee);
  EXPECT_EQ(opt.router.margin, 8);
  GeneratorOptions opt2;
  parse_generator_args({"-H", "-noclaim", "-noretry"}, opt2);
  EXPECT_EQ(opt2.router.engine, Engine::Hightower);
  EXPECT_FALSE(opt2.router.use_claimpoints);
  EXPECT_FALSE(opt2.router.retry_failed);
}

TEST(Options, Errors) {
  GeneratorOptions opt;
  EXPECT_THROW(parse_generator_args({"-p"}, opt), std::runtime_error);
  EXPECT_THROW(parse_generator_args({"-zz"}, opt), std::runtime_error);
}

TEST(Generator, TimingsPopulated) {
  const Network net = gen::chain_network({});
  GeneratorResult result;
  generate_diagram(net, {}, &result);
  EXPECT_GE(result.place_seconds, 0.0);
  EXPECT_GE(result.route_seconds, 0.0);
  EXPECT_EQ(result.stats.modules, 6);
}

TEST(Generator, SkipsPlacementWhenFullyPlaced) {
  const Network net = gen::life_network();
  Diagram dia(net);
  gen::life_hand_placement(dia);
  GeneratorOptions opt;
  opt.router.margin = 12;
  const GeneratorResult result = generate(dia, opt);
  EXPECT_EQ(result.place_seconds, 0.0);
  EXPECT_TRUE(result.placement.partitions.empty());
}

}  // namespace
}  // namespace na
