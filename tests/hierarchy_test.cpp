// Tests for the hierarchical design model and flattening (section 3.2's
// "each module contains an internal description consisting of submodules
// and interconnections").
#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "netlist/hierarchy.hpp"
#include "schematic/validate.hpp"
#include "sim/simulator.hpp"

namespace na {
namespace {

/// A half adder template: two ports in, two ports out, xor + and inside.
Network half_adder(const ModuleLibrary& lib) {
  Network t;
  const ModuleId x = lib.instantiate(t, "xor2", "x");
  const ModuleId a = lib.instantiate(t, "and2", "a");
  const TermId pa = t.add_system_terminal("a", TermType::In);
  const TermId pb = t.add_system_terminal("b", TermType::In);
  const TermId ps = t.add_system_terminal("s", TermType::Out);
  const TermId pc = t.add_system_terminal("c", TermType::Out);
  auto wire = [&](const char* name, std::initializer_list<TermId> terms) {
    const NetId n = t.add_net(name);
    for (TermId term : terms) t.connect(n, term);
  };
  wire("na", {pa, *t.term_by_name(x, "a"), *t.term_by_name(a, "a")});
  wire("nb", {pb, *t.term_by_name(x, "b"), *t.term_by_name(a, "b")});
  wire("ns", {*t.term_by_name(x, "y"), ps});
  wire("nc", {*t.term_by_name(a, "y"), pc});
  return t;
}

/// A full adder built from two half adders and an or gate — one level of
/// hierarchy.  The ha "module" instances carry terminals matching the ha
/// template's ports.
Network full_adder(const ModuleLibrary& lib) {
  Network t;
  // Hierarchical instances are ad-hoc modules whose template name refers to
  // the design template; terminal positions are only placeholders.
  auto ha_instance = [&](const char* name) {
    const ModuleId m = t.add_module(name, "ha", {6, 6});
    t.add_terminal(m, "a", TermType::In, {0, 2});
    t.add_terminal(m, "b", TermType::In, {0, 4});
    t.add_terminal(m, "s", TermType::Out, {6, 2});
    t.add_terminal(m, "c", TermType::Out, {6, 4});
    return m;
  };
  const ModuleId ha0 = ha_instance("ha0");
  const ModuleId ha1 = ha_instance("ha1");
  const ModuleId orc = lib.instantiate(t, "or2", "orc");
  const TermId pa = t.add_system_terminal("a", TermType::In);
  const TermId pb = t.add_system_terminal("b", TermType::In);
  const TermId pcin = t.add_system_terminal("cin", TermType::In);
  const TermId ps = t.add_system_terminal("s", TermType::Out);
  const TermId pcout = t.add_system_terminal("cout", TermType::Out);
  auto wire = [&](const char* name, std::initializer_list<TermId> terms) {
    const NetId n = t.add_net(name);
    for (TermId term : terms) t.connect(n, term);
  };
  wire("wa", {pa, *t.term_by_name(ha0, "a")});
  wire("wb", {pb, *t.term_by_name(ha0, "b")});
  wire("ws0", {*t.term_by_name(ha0, "s"), *t.term_by_name(ha1, "a")});
  wire("wcin", {pcin, *t.term_by_name(ha1, "b")});
  wire("ws", {*t.term_by_name(ha1, "s"), ps});
  wire("wc0", {*t.term_by_name(ha0, "c"), *t.term_by_name(orc, "a")});
  wire("wc1", {*t.term_by_name(ha1, "c"), *t.term_by_name(orc, "b")});
  wire("wcout", {*t.term_by_name(orc, "y"), pcout});
  return t;
}

Design adder_design() {
  ModuleLibrary lib = ModuleLibrary::standard_cells();
  Design d(lib);
  d.add_template("ha", half_adder(lib));
  d.add_template("fa", full_adder(lib));
  return d;
}

TEST(Design, TemplateRegistry) {
  const Design d = adder_design();
  EXPECT_TRUE(d.has_template("ha"));
  EXPECT_TRUE(d.has_template("fa"));
  EXPECT_FALSE(d.has_template("zz"));
  EXPECT_THROW(d.template_net("zz"), std::runtime_error);
  EXPECT_EQ(d.template_net("ha").module_count(), 2);
}

TEST(Design, LeafCount) {
  const Design d = adder_design();
  EXPECT_EQ(d.leaf_count("ha"), 2);
  EXPECT_EQ(d.leaf_count("fa"), 5);  // 2 ha x 2 gates + or
}

TEST(Design, FlattenStructure) {
  const Design d = adder_design();
  const Network flat = d.flatten("fa");
  EXPECT_EQ(flat.module_count(), 5);
  EXPECT_EQ(flat.system_terms().size(), 5u);
  EXPECT_TRUE(flat.validate().empty());
  // Path naming.
  EXPECT_TRUE(flat.module_by_name("ha0/x").has_value());
  EXPECT_TRUE(flat.module_by_name("ha1/a").has_value());
  EXPECT_TRUE(flat.module_by_name("orc").has_value());
  // Boundary nets are merged: ha0's internal output net and the parent's
  // ws0 wire are one net, reaching ha1/x.
  const auto x0y = *flat.term_by_name(*flat.module_by_name("ha0/x"), "y");
  const auto x1a = *flat.term_by_name(*flat.module_by_name("ha1/x"), "a");
  EXPECT_EQ(flat.term(x0y).net, flat.term(x1a).net);
}

TEST(Design, FlattenedFullAdderComputes) {
  // The flat network must behave as a full adder for all 8 input patterns.
  const Design d = adder_design();
  const Network flat = d.flatten("fa");
  sim::Simulator s(flat);
  const TermId pa = *flat.term_by_name(kNone, "a");
  const TermId pb = *flat.term_by_name(kNone, "b");
  const TermId pcin = *flat.term_by_name(kNone, "cin");
  const TermId ps = *flat.term_by_name(kNone, "s");
  const TermId pcout = *flat.term_by_name(kNone, "cout");
  for (int v = 0; v < 8; ++v) {
    const bool a = v & 1, b = v & 2, cin = v & 4;
    s.set_input(pa, a);
    s.set_input(pb, b);
    s.set_input(pcin, cin);
    s.settle();
    const int sum = (a ? 1 : 0) + (b ? 1 : 0) + (cin ? 1 : 0);
    EXPECT_EQ(s.value_at(ps), (sum & 1) != 0) << "v=" << v;
    EXPECT_EQ(s.value_at(pcout), sum >= 2) << "v=" << v;
  }
}

TEST(Design, FlattenedNetworkGenerates) {
  // The flat network runs through the whole diagram generator cleanly.
  const Design d = adder_design();
  const Network flat = d.flatten("fa");
  GeneratorOptions opt;
  opt.placer.max_part_size = 5;
  opt.placer.max_box_size = 3;
  opt.router.margin = 6;
  GeneratorResult result;
  const Diagram dia = generate_diagram(flat, opt, &result);
  EXPECT_EQ(result.route.nets_failed, 0);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

TEST(Design, EveryTemplateGetsItsOwnDiagram) {
  // One schematic page per hierarchy level, like the ESCHER library.
  const Design d = adder_design();
  for (const auto& [name, tnet] : d.templates()) {
    GeneratorOptions opt;
    opt.placer.max_part_size = 4;
    opt.placer.max_box_size = 3;
    opt.router.margin = 6;
    GeneratorResult result;
    const Diagram dia = generate_diagram(tnet, opt, &result);
    EXPECT_EQ(result.route.nets_failed, 0) << name;
    EXPECT_TRUE(validate_diagram(dia, true).empty()) << name;
  }
}

TEST(Design, RecursionDetected) {
  ModuleLibrary lib = ModuleLibrary::standard_cells();
  Design d(lib);
  Network t;
  const ModuleId self = t.add_module("inner", "loop", {4, 4});
  (void)self;
  d.add_template("loop", std::move(t));
  EXPECT_THROW(d.flatten("loop"), std::runtime_error);
}

TEST(Design, UnconnectedChildPortStaysLocal) {
  ModuleLibrary lib = ModuleLibrary::standard_cells();
  Design d(lib);
  d.add_template("ha", half_adder(lib));
  Network t;
  const ModuleId m = t.add_module("u", "ha", {6, 6});
  t.add_terminal(m, "a", TermType::In, {0, 2});
  // b, s, c left unconnected at the instance.
  const TermId pa = t.add_system_terminal("x", TermType::In);
  const NetId n = t.add_net("w");
  t.connect(n, pa);
  t.connect(n, *t.term_by_name(m, "a"));
  d.add_template("top", std::move(t));
  const Network flat = d.flatten("top");
  EXPECT_EQ(flat.module_count(), 2);  // the ha's two gates
  // The child's internal nets still exist under the instance path.
  EXPECT_TRUE(flat.net_by_name("u/ns").has_value());
}

}  // namespace
}  // namespace na
