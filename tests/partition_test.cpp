// Unit tests for the partitioning step (TAKE_A_SEED / FORM_PARTITION /
// PARTITIONING, paper section 4.6.3).
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/controller.hpp"
#include "gen/random_net.hpp"
#include "gen/synth.hpp"
#include "netlist/module_library.hpp"
#include "place/partition.hpp"

namespace na {
namespace {

/// A dumbbell: cluster {0,1,2} tightly connected, cluster {3,4,5} tightly
/// connected, one bridge net between them.
Network dumbbell() {
  Network net;
  for (int i = 0; i < 6; ++i) {
    const ModuleId m = net.add_module("m" + std::to_string(i), "", {4, 4});
    net.add_terminal(m, "a", TermType::In, {0, 1});
    net.add_terminal(m, "b", TermType::In, {0, 3});
    net.add_terminal(m, "y", TermType::Out, {4, 1});
    net.add_terminal(m, "z", TermType::Out, {4, 3});
  }
  auto t = [&](ModuleId m, const char* n) { return *net.term_by_name(m, n); };
  auto wire = [&](const char* name, TermId a, TermId b) {
    const NetId n = net.add_net(name);
    net.connect(n, a);
    net.connect(n, b);
  };
  // Cluster 0-1-2: triangle (two nets per pair would exceed terminals; one each).
  wire("c01", t(0, "y"), t(1, "a"));
  wire("c12", t(1, "y"), t(2, "a"));
  wire("c20", t(2, "y"), t(0, "a"));
  // Cluster 3-4-5.
  wire("c34", t(3, "y"), t(4, "a"));
  wire("c45", t(4, "y"), t(5, "a"));
  wire("c53", t(5, "y"), t(3, "a"));
  // Bridge.
  wire("bridge", t(0, "z"), t(3, "b"));
  return net;
}

TEST(TakeASeed, PicksMostConnectedFreeModule) {
  Network net;
  // Star: m0 connects to m1..m3; m1..m3 mutually unconnected.
  for (int i = 0; i < 4; ++i) {
    const ModuleId m = net.add_module("m" + std::to_string(i), "", {4, 4});
    net.add_terminal(m, "a", TermType::In, {0, 1});
    net.add_terminal(m, "y", TermType::Out, {4, 1});
    net.add_terminal(m, "y2", TermType::Out, {4, 3});
    net.add_terminal(m, "a2", TermType::In, {0, 3});
  }
  auto wire = [&](const char* name, TermId a, TermId b) {
    const NetId n = net.add_net(name);
    net.connect(n, a);
    net.connect(n, b);
  };
  wire("n1", *net.term_by_name(0, "y"), *net.term_by_name(1, "a"));
  wire("n2", *net.term_by_name(0, "y2"), *net.term_by_name(2, "a"));
  wire("n3", *net.term_by_name(0, "a"), *net.term_by_name(3, "y"));
  const std::vector<bool> all(4, true);
  EXPECT_EQ(take_a_seed(net, all), 0);
}

TEST(TakeASeed, TieBreaksOnPlacedConnections) {
  const Network net = dumbbell();
  // m0 and m3 both have 3 connections among free modules when everything
  // is free... actually every module has 2 intra + m0/m3 have the bridge.
  std::vector<bool> free_mask(6, true);
  const ModuleId seed = take_a_seed(net, free_mask);
  EXPECT_TRUE(seed == 0 || seed == 3);
  // Make cluster {0,1,2} placed: among free {3,4,5} all have 2 free
  // connections, but m3 also touches the placed side (the bridge + nothing)
  // -> tie break prefers FEWEST placed connections: m4 or m5.
  free_mask = {false, false, false, true, true, true};
  const ModuleId seed2 = take_a_seed(net, free_mask);
  EXPECT_TRUE(seed2 == 4 || seed2 == 5);
}

TEST(TakeASeed, ThrowsWithoutFreeModules) {
  const Network net = dumbbell();
  EXPECT_THROW(take_a_seed(net, std::vector<bool>(6, false)), std::logic_error);
}

TEST(FormPartition, RespectsSizeLimit) {
  const Network net = dumbbell();
  std::vector<bool> free_mask(6, true);
  const auto part = form_partition(net, free_mask, 0, {3, 1000});
  EXPECT_EQ(part.size(), 3u);
  // The grown cluster is the tightly connected one.
  auto sorted = part;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<ModuleId>{0, 1, 2}));
  // free_mask updated.
  EXPECT_FALSE(free_mask[0]);
  EXPECT_TRUE(free_mask[3]);
}

TEST(FormPartition, RespectsConnectionLimit) {
  const Network net = dumbbell();
  std::vector<bool> free_mask(6, true);
  // With the external-connection limit at 1, growth stops as soon as the
  // partition's external net count reaches it.
  const auto part = form_partition(net, free_mask, 1, {100, 1});
  EXPECT_LT(part.size(), 6u);
}

TEST(FormPartition, StopsAtDisconnectedModules) {
  Network net;
  for (int i = 0; i < 3; ++i) {
    net.add_module("m" + std::to_string(i), "", {2, 2});
  }
  // No nets at all: a partition around seed 0 contains only module 0 even
  // with a large size limit.
  std::vector<bool> free_mask(3, true);
  const auto part = form_partition(net, free_mask, 0, {100, 1000});
  EXPECT_EQ(part, std::vector<ModuleId>{0});
}

TEST(Partitioning, CoversAllModulesDisjointly) {
  for (unsigned seed : {1u, 7u, 42u}) {
    gen::RandomNetOptions opt;
    opt.modules = 17;
    opt.seed = seed;
    const Network net = gen::random_network(opt);
    for (int max_size : {1, 3, 6, 100}) {
      const auto parts = partition_network(net, {max_size, 1000000});
      std::vector<int> seen(net.module_count(), 0);
      for (const auto& p : parts) {
        EXPECT_FALSE(p.empty());
        EXPECT_LE(static_cast<int>(p.size()), max_size);
        for (ModuleId m : p) seen[m]++;
      }
      for (int m = 0; m < net.module_count(); ++m) {
        EXPECT_EQ(seen[m], 1) << "module " << m << " covered " << seen[m]
                              << " times (max_size " << max_size << ")";
      }
    }
  }
}

TEST(Partitioning, SizeOneYieldsSingletons) {
  const Network net = gen::controller_network();
  const auto parts = partition_network(net, {1, 1000000});
  EXPECT_EQ(parts.size(), 16u);
  for (const auto& p : parts) EXPECT_EQ(p.size(), 1u);
}

TEST(Partitioning, ControllerClusters) {
  // The figure 6.3 experiment: partition size 5 groups each functional
  // cluster.  The external-connection limit (-c) keeps the controller —
  // whose 9 nets fan out everywhere — in a partition of its own, which is
  // what makes the clusters come out as clean functional parts.
  const Network net = gen::controller_network();
  const auto parts = partition_network(net, {5, 8});
  // 16 modules in partitions of at most 5 -> at least 4 partitions.
  EXPECT_GE(parts.size(), 4u);
  // Each 5-module loop must land in one partition: check that each "u<i>_"
  // family is not split.
  for (int c = 0; c < 3; ++c) {
    const std::string prefix = "u" + std::to_string(c) + "_";
    int home = -1;
    for (size_t p = 0; p < parts.size(); ++p) {
      for (ModuleId m : parts[p]) {
        if (net.module(m).name.starts_with(prefix)) {
          if (home == -1) home = static_cast<int>(p);
          EXPECT_EQ(home, static_cast<int>(p))
              << "cluster " << prefix << " split across partitions";
        }
      }
    }
  }
}

TEST(Partitioning, IncrementalEngineMatchesReference) {
  // The heap-driven engine behind partition_network must reproduce the
  // paper-transcription scan exactly — partition for partition, member for
  // member — across network families and limit settings.
  std::vector<Network> nets;
  for (unsigned seed : {1u, 5u}) {
    gen::RandomNetOptions ropt;
    ropt.modules = 23;
    ropt.seed = seed;
    nets.push_back(gen::random_network(ropt));
  }
  nets.push_back(gen::controller_network());
  for (const gen::SynthTopology topo :
       {gen::SynthTopology::GridMesh, gen::SynthTopology::RandomDag}) {
    gen::SynthOptions sopt;
    sopt.topology = topo;
    sopt.modules = 150;
    sopt.seed = 11;
    nets.push_back(gen::synth_network(sopt));
  }
  for (const Network& net : nets) {
    std::vector<bool> all(net.module_count(), true);
    std::vector<bool> some = all;
    for (size_t m = 0; m < some.size(); m += 3) some[m] = false;
    for (const PartitionLimits limits :
         {PartitionLimits{1, 1000000}, PartitionLimits{4, 12},
          PartitionLimits{7, 5}, PartitionLimits{100, 1000000}}) {
      EXPECT_EQ(partition_network(net, limits, all),
                partition_network_reference(net, limits, all))
          << "p=" << limits.max_part_size << " c=" << limits.max_connections;
      EXPECT_EQ(partition_network(net, limits, some),
                partition_network_reference(net, limits, some))
          << "masked p=" << limits.max_part_size;
    }
  }
}

TEST(Partitioning, IncludeMaskRestricts) {
  const Network net = dumbbell();
  std::vector<bool> include(6, false);
  include[3] = include[4] = include[5] = true;
  const auto parts = partition_network(net, {10, 1000000}, include);
  int total = 0;
  for (const auto& p : parts) {
    for (ModuleId m : p) {
      EXPECT_GE(m, 3);
      ++total;
    }
  }
  EXPECT_EQ(total, 3);
}

}  // namespace
}  // namespace na
