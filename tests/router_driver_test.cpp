// Tests for the whole-diagram routing driver: initiation + expansion,
// multi-point nets, claimpoints (with the figure 5.10-5.15 scenarios),
// prerouted nets, retry pass and net ordering.
#include <gtest/gtest.h>

#include "netlist/module_library.hpp"
#include "route/net_order.hpp"
#include "route/router.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

/// Two modules facing each other with `tracks` free columns between them.
struct FacingPair {
  Network net;
  Diagram dia{net};

  explicit FacingPair(int tracks = 6) {
    const ModuleLibrary lib = ModuleLibrary::standard_cells();
    lib.instantiate(net, "buf", "b0");
    lib.instantiate(net, "buf", "b1");
    const NetId n = net.add_net("n0");
    net.connect(n, *net.term_by_name(0, "y"));
    net.connect(n, *net.term_by_name(1, "a"));
    dia = Diagram(net);
    dia.place_module(0, {0, 0});
    dia.place_module(1, {4 + tracks + 1, 0});
  }
};

TEST(RouteAll, SimpleStraight) {
  FacingPair f;
  const RouteReport r = route_all(f.dia);
  EXPECT_EQ(r.nets_routed, 1);
  EXPECT_EQ(r.nets_failed, 0);
  EXPECT_TRUE(f.dia.route(0).routed);
  EXPECT_EQ(f.dia.route(0).bend_count(), 0);
  EXPECT_TRUE(validate_diagram(f.dia, true).empty());
}

TEST(RouteAll, MultipointNet) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "src");
  lib.instantiate(net, "buf", "d0");
  lib.instantiate(net, "buf", "d1");
  lib.instantiate(net, "buf", "d2");
  const NetId n = net.add_net("fan");
  net.connect(n, *net.term_by_name(0, "y"));
  for (int i = 1; i < 4; ++i) net.connect(n, *net.term_by_name(i, "a"));
  Diagram dia(net);
  dia.place_module(0, {0, 10});
  dia.place_module(1, {15, 0});
  dia.place_module(2, {15, 10});
  dia.place_module(3, {15, 20});
  const RouteReport r = route_all(dia);
  EXPECT_EQ(r.nets_routed, 1);
  EXPECT_EQ(r.connections_made, 3);  // init + 2 expansions
  EXPECT_TRUE(validate_diagram(dia, true).empty());
  // A fan-out of three sinks needs branch points.
  EXPECT_GE(dia.route(n).polylines.size(), 3u);
}

TEST(RouteAll, SystemTerminals) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  const TermId in = net.add_system_terminal("x", TermType::In);
  const NetId n = net.add_net("n");
  net.connect(n, in);
  net.connect(n, *net.term_by_name(0, "a"));
  Diagram dia(net);
  dia.place_module(0, {5, 5});
  dia.place_system_term(in, {0, 6});
  const RouteReport r = route_all(dia);
  EXPECT_EQ(r.nets_routed, 1);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

TEST(RouteAll, TwoNetsCross) {
  // Nets forced to cross: NW->SE and SW->NE.
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "nw");
  lib.instantiate(net, "buf", "se");
  lib.instantiate(net, "buf", "sw");
  lib.instantiate(net, "buf", "ne");
  const NetId n0 = net.add_net("a");
  net.connect(n0, *net.term_by_name(0, "y"));
  net.connect(n0, *net.term_by_name(1, "a"));
  const NetId n1 = net.add_net("b");
  net.connect(n1, *net.term_by_name(2, "y"));
  net.connect(n1, *net.term_by_name(3, "a"));
  Diagram dia(net);
  dia.place_module(0, {0, 20});
  dia.place_module(1, {20, 0});
  dia.place_module(2, {0, 0});
  dia.place_module(3, {20, 20});
  const RouteReport r = route_all(dia);
  EXPECT_EQ(r.nets_routed, 2);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

TEST(RouteAll, PreroutedNetKept) {
  FacingPair f;
  const std::vector<geom::Point> pre{{4, 1}, {7, 1}, {7, 4}, {11, 4},
                                     {11, 1}};  // scenic prerouted route
  f.dia.add_polyline(0, pre);
  f.dia.route(0).prerouted = true;
  const RouteReport r = route_all(f.dia);
  EXPECT_EQ(r.nets_routed, 1);
  EXPECT_EQ(r.connections_made, 0);  // nothing new to connect
  EXPECT_EQ(f.dia.route(0).polylines.size(), 1u);
  EXPECT_EQ(f.dia.route(0).polylines[0], pre);
}

TEST(RouteAll, PartialPrerouteExtended) {
  // Three-terminal net with one leg prerouted; the driver must add the rest.
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "src");
  lib.instantiate(net, "buf", "d0");
  lib.instantiate(net, "buf", "d1");
  const NetId n = net.add_net("fan");
  net.connect(n, *net.term_by_name(0, "y"));
  net.connect(n, *net.term_by_name(1, "a"));
  net.connect(n, *net.term_by_name(2, "a"));
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {15, 0});
  dia.place_module(2, {15, 10});
  dia.add_polyline(n, {{4, 1}, {15, 1}});  // src -> d0 already drawn
  const RouteReport r = route_all(dia);
  EXPECT_EQ(r.nets_routed, 1);
  EXPECT_EQ(r.connections_made, 1);  // only d1 needed work
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

TEST(RouteAll, ReportsUnroutable) {
  // Target completely walled in by a third module ring: no path.
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  lib.instantiate(net, "buf", "b1");
  net.add_module("wall_l", "", {2, 30});
  net.add_module("wall_r", "", {2, 30});
  net.add_module("wall_t", "", {30, 2});
  net.add_module("wall_b", "", {30, 2});
  const NetId n = net.add_net("n0");
  net.connect(n, *net.term_by_name(0, "y"));
  net.connect(n, *net.term_by_name(1, "a"));
  Diagram dia(net);
  dia.place_module(0, {10, 10});  // inside the walls
  dia.place_module(1, {60, 10});  // outside
  dia.place_module(2, {0, 0});
  dia.place_module(3, {26, 0});
  dia.place_module(4, {0, 28});
  dia.place_module(5, {0, -2});
  const RouteReport r = route_all(dia);
  EXPECT_EQ(r.nets_failed, 1);
  EXPECT_EQ(r.failed_nets, std::vector<NetId>{n});
  EXPECT_FALSE(dia.route(n).routed);
}

// --- claimpoints: the figure 5.10/5.12 scenario ---------------------------------

/// Two modules MO and M1 with a two-track channel between them; terminals
/// A,B (net ab) on the upper track's level and C,D (net cd) with C facing
/// the channel — without claims, routing ab first may block C (fig 5.10);
/// with claims C's escape survives (fig 5.12).
struct ClaimScenario {
  Network net;
  NetId ab, cd;
  Diagram dia{net};

  ClaimScenario() {
    const ModuleId m0 = net.add_module("M0", "", {10, 10});
    const TermId a = net.add_terminal(m0, "A", TermType::Out, {10, 8});
    const TermId c = net.add_terminal(m0, "C", TermType::Out, {10, 4});
    const ModuleId m1 = net.add_module("M1", "", {10, 10});
    const TermId b = net.add_terminal(m1, "B", TermType::In, {0, 8});
    const TermId d = net.add_terminal(m1, "D", TermType::In, {0, 2});
    ab = net.add_net("ab");
    net.connect(ab, a);
    net.connect(ab, b);
    cd = net.add_net("cd");
    net.connect(cd, c);
    net.connect(cd, d);
    dia = Diagram(net);
    dia.place_module(m0, {0, 0});
    dia.place_module(m1, {12, 0});  // one free column at x=11
  }
};

TEST(Claimpoints, SingleChannelSharing) {
  // With a single free column between the modules, both nets must use it;
  // claims force ab to leave room where cd's terminals claim their track.
  ClaimScenario s;
  RouterOptions opt;
  opt.use_claimpoints = true;
  const RouteReport r = route_all(s.dia, opt);
  // cd's claims at (11,4)/(11,2) block ab from bending there, but ab can
  // still cross the channel straight: both route.
  EXPECT_EQ(r.nets_routed, 2) << "failed nets: " << r.nets_failed;
  EXPECT_TRUE(validate_diagram(s.dia, true).empty());
}

TEST(Claimpoints, RetryPassRecoversBlockedNets) {
  // Force a failure in pass 1 by disabling claims; the retry pass (claims
  // all gone, more of the plane occupied the same way) still helps in some
  // configurations — at minimum the two passes never make things worse.
  ClaimScenario s;
  RouterOptions no_claims;
  no_claims.use_claimpoints = false;
  no_claims.retry_failed = false;
  Diagram d1 = s.dia;
  const RouteReport r1 = route_all(d1, no_claims);
  RouterOptions with_retry = no_claims;
  with_retry.retry_failed = true;
  Diagram d2 = s.dia;
  const RouteReport r2 = route_all(d2, with_retry);
  EXPECT_GE(r2.nets_routed, r1.nets_routed);
}

TEST(NetOrder, Criteria) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  lib.instantiate(net, "buf", "b1");
  lib.instantiate(net, "buf", "b2");
  const NetId short_net = net.add_net("short");
  net.connect(short_net, *net.term_by_name(0, "y"));
  net.connect(short_net, *net.term_by_name(1, "a"));
  const NetId long_net = net.add_net("long");
  net.connect(long_net, *net.term_by_name(1, "y"));
  net.connect(long_net, *net.term_by_name(2, "a"));
  net.connect(long_net, *net.term_by_name(0, "a"));  // 3 terminals, wide span
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {10, 0});
  dia.place_module(2, {40, 0});

  EXPECT_EQ(order_nets(dia, NetOrderCriterion::AsGiven),
            (std::vector<NetId>{short_net, long_net}));
  EXPECT_EQ(order_nets(dia, NetOrderCriterion::ShortestFirst),
            (std::vector<NetId>{short_net, long_net}));
  EXPECT_EQ(order_nets(dia, NetOrderCriterion::LongestFirst),
            (std::vector<NetId>{long_net, short_net}));
  EXPECT_EQ(order_nets(dia, NetOrderCriterion::FewestTermsFirst),
            (std::vector<NetId>{short_net, long_net}));
  EXPECT_EQ(order_nets(dia, NetOrderCriterion::MostTermsFirst),
            (std::vector<NetId>{long_net, short_net}));
}

TEST(RouteAll, EnginesProduceValidDiagrams) {
  for (Engine e : {Engine::LineExpansion, Engine::Lee, Engine::Hightower}) {
    FacingPair f;
    RouterOptions opt;
    opt.engine = e;
    const RouteReport r = route_all(f.dia, opt);
    EXPECT_EQ(r.nets_routed, 1) << "engine " << static_cast<int>(e);
    EXPECT_TRUE(validate_diagram(f.dia, true).empty());
  }
}

TEST(RouteAll, LengthFirstOrderShortens) {
  // With -s (length before crossings) the total wire length can only get
  // shorter or stay equal on a simple two-net crossing field.
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  lib.instantiate(net, "buf", "b1");
  const NetId n = net.add_net("n0");
  net.connect(n, *net.term_by_name(0, "y"));
  net.connect(n, *net.term_by_name(1, "a"));
  Diagram base(net);
  base.place_module(0, {0, 0});
  base.place_module(1, {20, 6});

  Diagram d1 = base;
  RouterOptions crossings_first;
  route_all(d1, crossings_first);
  Diagram d2 = base;
  RouterOptions length_first;
  length_first.order = CostOrder::BendsLengthCrossings;
  route_all(d2, length_first);
  EXPECT_LE(d2.route(n).total_length(), d1.route(n).total_length());
}

}  // namespace
}  // namespace na
