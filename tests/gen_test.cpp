// Tests for the workload generators: the reconstructed paper networks must
// have exactly the published module/net counts, and the random generators
// must produce structurally valid networks.
#include <gtest/gtest.h>

#include "gen/chain.hpp"
#include "gen/channel_gen.hpp"
#include "gen/controller.hpp"
#include "gen/life.hpp"
#include "gen/random_net.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

TEST(ChainGen, Figure61Counts) {
  // Paper table 6.1, row 6.1: 6 modules, 6 nets.
  const Network net = gen::chain_network({});
  EXPECT_EQ(net.module_count(), 6);
  EXPECT_EQ(net.net_count(), 6);
  EXPECT_TRUE(net.validate().empty());
}

TEST(ChainGen, Options) {
  const Network net = gen::chain_network({4, true, true});
  EXPECT_EQ(net.module_count(), 4);
  EXPECT_EQ(net.net_count(), 5);  // 3 chain + in + out
  EXPECT_EQ(net.system_terms().size(), 2u);
  EXPECT_TRUE(net.validate().empty());
}

TEST(ChainGen, IsOneDriveChain) {
  const Network net = gen::chain_network({5, false, false});
  for (int i = 0; i + 1 < 5; ++i) {
    EXPECT_EQ(net.connections(i, i + 1), 1);
  }
  EXPECT_EQ(net.connections(0, 2), 0);
}

TEST(ControllerGen, Figure62Counts) {
  // Paper table 6.1, rows 6.2-6.5: 16 modules, 24 nets.
  const Network net = gen::controller_network();
  EXPECT_EQ(net.module_count(), 16);
  EXPECT_EQ(net.net_count(), 24);
  EXPECT_TRUE(net.validate().empty());
}

TEST(ControllerGen, CentralController) {
  const Network net = gen::controller_network();
  const auto ctrl = net.module_by_name("ctrl");
  ASSERT_TRUE(ctrl.has_value());
  // The controller touches all three clusters.
  EXPECT_GE(net.neighbors(*ctrl).size(), 3u);
}

TEST(LifeGen, Figure66Counts) {
  // Paper table 6.1, rows 6.6/6.7: 27 modules, 222 nets.
  const Network net = gen::life_network();
  EXPECT_EQ(net.module_count(), 27);
  EXPECT_EQ(net.net_count(), 222);
  EXPECT_EQ(net.system_terms().size(), 6u);
  EXPECT_TRUE(net.validate().empty());
}

TEST(LifeGen, EveryCellHasEightNeighbourInputsDriven) {
  const Network net = gen::life_network();
  for (int i = 0; i < 9; ++i) {
    const std::string name =
        "sum" + std::to_string(i / 3) + std::to_string(i % 3);
    const ModuleId sum = *net.module_by_name(name);
    for (int k = 0; k < 8; ++k) {
      const auto t = net.term_by_name(sum, "n" + std::to_string(k));
      ASSERT_TRUE(t.has_value());
      EXPECT_NE(net.term(*t).net, kNone) << name << ".n" << k;
      // Each neighbour net is point-to-point.
      EXPECT_EQ(net.net(net.term(*t).net).terms.size(), 2u);
    }
  }
}

TEST(LifeGen, GlobalNetsSpanAllCells) {
  const Network net = gen::life_network();
  const auto clk = net.net_by_name("clk");
  ASSERT_TRUE(clk.has_value());
  EXPECT_EQ(net.net(*clk).terms.size(), 10u);  // root + 9 registers
  const auto mode = net.net_by_name("mode");
  ASSERT_TRUE(mode.has_value());
  EXPECT_EQ(net.net(*mode).terms.size(), 10u);
}

TEST(LifeGen, HandPlacementValid) {
  const Network net = gen::life_network();
  Diagram dia(net);
  gen::life_hand_placement(dia);
  EXPECT_TRUE(dia.all_placed());
  EXPECT_TRUE(validate_diagram(dia).empty());
}

TEST(RandomGen, Deterministic) {
  const Network a = gen::random_network({});
  const Network b = gen::random_network({});
  ASSERT_EQ(a.module_count(), b.module_count());
  ASSERT_EQ(a.net_count(), b.net_count());
  for (int n = 0; n < a.net_count(); ++n) {
    EXPECT_EQ(a.net(n).terms, b.net(n).terms);
  }
}

TEST(RandomGen, SeedsDiffer) {
  gen::RandomNetOptions o1;
  o1.seed = 1;
  gen::RandomNetOptions o2;
  o2.seed = 2;
  const Network a = gen::random_network(o1);
  const Network b = gen::random_network(o2);
  bool differ = a.net_count() != b.net_count();
  for (int n = 0; !differ && n < std::min(a.net_count(), b.net_count()); ++n) {
    differ = a.net(n).terms != b.net(n).terms;
  }
  EXPECT_TRUE(differ);
}

TEST(RandomGen, StructurallyValid) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    gen::RandomNetOptions opt;
    opt.modules = 15;
    opt.extra_nets = 10;
    opt.seed = seed;
    const Network net = gen::random_network(opt);
    EXPECT_EQ(net.module_count(), 15);
    EXPECT_TRUE(net.validate().empty()) << "seed " << seed;
  }
}

TEST(ChannelGen, Deterministic) {
  const ChannelProblem a = gen::random_channel({});
  const ChannelProblem b = gen::random_channel({});
  EXPECT_EQ(a.top, b.top);
  EXPECT_EQ(a.bottom, b.bottom);
}

TEST(ChannelGen, PinCounts) {
  gen::ChannelGenOptions opt;
  opt.columns = 40;
  opt.nets = 12;
  const ChannelProblem p = gen::random_channel(opt);
  EXPECT_EQ(p.columns(), 40);
  std::vector<int> pins(12, 0);
  for (int v : p.top) {
    if (v != ChannelTrunk::kNoNet) pins[v]++;
  }
  for (int v : p.bottom) {
    if (v != ChannelTrunk::kNoNet) pins[v]++;
  }
  for (int n = 0; n < 12; ++n) EXPECT_GE(pins[n], 2) << "net " << n;
}

}  // namespace
}  // namespace na
