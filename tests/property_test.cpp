// Property-based parameterised sweeps over random networks and option
// grids: every generated diagram must be geometrically valid, the router
// must be complete relative to the Lee oracle, and the objective ordering
// must hold on every routed net.
#include <gtest/gtest.h>

#include <tuple>

#include "core/generator.hpp"
#include "gen/random_net.hpp"
#include "place/columnar.hpp"
#include "place/epitaxial.hpp"
#include "place/mincut.hpp"
#include "route/net_order.hpp"
#include "schematic/metrics.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: full pipeline over (seed, partition size, box size).
// ---------------------------------------------------------------------------

using PipelineParams = std::tuple<unsigned /*seed*/, int /*part*/, int /*box*/>;

class PipelineSweep : public ::testing::TestWithParam<PipelineParams> {};

TEST_P(PipelineSweep, GeneratesValidDiagram) {
  const auto [seed, part, box] = GetParam();
  gen::RandomNetOptions gopt;
  gopt.modules = 10;
  gopt.extra_nets = 6;
  gopt.seed = seed;
  const Network net = gen::random_network(gopt);

  GeneratorOptions opt;
  opt.placer.max_part_size = part;
  opt.placer.max_box_size = box;
  opt.router.margin = 6;
  GeneratorResult result;
  const Diagram dia = generate_diagram(net, opt, &result);

  const auto problems = validate_diagram(dia);
  for (const auto& p : problems) ADD_FAILURE() << p;
  // Small random networks with generous margins route completely.
  EXPECT_EQ(result.route.nets_failed, 0);
  // Stats are consistent with the report.
  const DiagramStats stats = compute_stats(dia);
  EXPECT_EQ(stats.unrouted, result.route.nets_failed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PipelineSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(1, 4),
                       ::testing::Values(1, 3)),
    [](const auto& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_b" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 2: router completeness & objective ordering vs the Lee oracle.
// ---------------------------------------------------------------------------

class RouterOracleSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RouterOracleSweep, LineExpansionMatchesLeeExistence) {
  const unsigned seed = GetParam();
  gen::RandomNetOptions gopt;
  gopt.modules = 8;
  gopt.extra_nets = 5;
  gopt.seed = seed;
  const Network net = gen::random_network(gopt);
  GeneratorOptions opt;
  opt.placer.max_part_size = 4;
  opt.placer.max_box_size = 2;
  Diagram dia(net);
  place(dia, opt.placer);

  // Route the same placement with both engines; since both are complete,
  // neither may fail where the other succeeds *in the first pass on an
  // empty plane per net* — we compare single-connection feasibility on the
  // fresh grid (no nets committed) for every 2-terminal net.
  const RoutingGrid grid = build_grid(dia, 6);
  for (NetId n = 0; n < net.net_count(); ++n) {
    const Net& nn = net.net(n);
    if (nn.terms.size() != 2) continue;
    SearchProblem prob;
    prob.net = n;
    const Terminal& t0 = net.term(nn.terms[0]);
    prob.starts = {{dia.term_pos(nn.terms[0]),
                    t0.is_system() ? std::optional<geom::Dir>{}
                                   : std::optional<geom::Dir>{
                                         dia.term_facing(nn.terms[0])}}};
    const Terminal& t1 = net.term(nn.terms[1]);
    prob.target = SearchTarget{
        dia.term_pos(nn.terms[1]),
        t1.is_system() ? std::optional<geom::Dir>{}
                       : std::optional<geom::Dir>{dia.term_facing(nn.terms[1])}};
    const auto lx = line_expansion_search(grid, prob);
    const auto lee = lee_search(grid, prob);
    EXPECT_EQ(lx.has_value(), lee.has_value()) << "net " << nn.name;
    if (lx && lee) {
      // Lee minimises length; line expansion minimises bends first.
      EXPECT_GE(lx->cost.length, lee->cost.length) << "net " << nn.name;
      // A min-bend path can never have more bends than the Lee path.
      const int lee_bends =
          static_cast<int>(lee->path.size()) - 2;  // corners of the polyline
      EXPECT_LE(lx->cost.bends, std::max(lee_bends, 0)) << "net " << nn.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterOracleSweep,
                         ::testing::Range(1u, 13u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Sweep 3: baseline placers stay valid and routable across seeds.
// ---------------------------------------------------------------------------

enum class PlacerKind { Pipeline, Mincut, Epitaxial, Columnar };

using BaselineParams = std::tuple<unsigned, PlacerKind>;

class BaselineSweep : public ::testing::TestWithParam<BaselineParams> {};

TEST_P(BaselineSweep, PlacesValidlyAndRoutes) {
  const auto [seed, kind] = GetParam();
  gen::RandomNetOptions gopt;
  gopt.modules = 9;
  gopt.extra_nets = 4;
  gopt.seed = seed;
  const Network net = gen::random_network(gopt);
  Diagram dia(net);
  switch (kind) {
    case PlacerKind::Pipeline: {
      PlacerOptions opt;
      opt.max_part_size = 4;
      opt.max_box_size = 3;
      place(dia, opt);
      break;
    }
    case PlacerKind::Mincut:
      mincut_place(dia);
      break;
    case PlacerKind::Epitaxial:
      epitaxial_place(dia);
      break;
    case PlacerKind::Columnar:
      columnar_place(dia);
      break;
  }
  const auto placement_problems = validate_diagram(dia);
  for (const auto& p : placement_problems) ADD_FAILURE() << p;

  RouterOptions ropt;
  ropt.margin = 6;
  const RouteReport report = route_all(dia, ropt);
  EXPECT_EQ(report.nets_failed, 0) << "placer " << static_cast<int>(kind);
  const auto problems = validate_diagram(dia, true);
  for (const auto& p : problems) ADD_FAILURE() << p;
}

constexpr const char* kPlacerNames[] = {"pipeline", "mincut", "epitaxial",
                                        "columnar"};

INSTANTIATE_TEST_SUITE_P(
    Placers, BaselineSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(PlacerKind::Pipeline, PlacerKind::Mincut,
                                         PlacerKind::Epitaxial,
                                         PlacerKind::Columnar)),
    [](const auto& info) {
      return "s" + std::to_string(std::get<0>(info.param)) +
             kPlacerNames[static_cast<int>(std::get<1>(info.param))];
    });

// ---------------------------------------------------------------------------
// Sweep 4: net-order criteria all keep the diagram valid.
// ---------------------------------------------------------------------------

class OrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(OrderSweep, AllCriteriaValid) {
  gen::RandomNetOptions gopt;
  gopt.modules = 10;
  gopt.seed = 7;
  const Network net = gen::random_network(gopt);
  GeneratorOptions opt;
  opt.placer.max_part_size = 3;
  opt.placer.max_box_size = 2;
  opt.router.margin = 6;
  opt.router.order_criterion = GetParam();
  GeneratorResult result;
  const Diagram dia = generate_diagram(net, opt, &result);
  EXPECT_EQ(result.route.nets_failed, 0);
  const auto problems = validate_diagram(dia, true);
  for (const auto& p : problems) ADD_FAILURE() << p;
}

INSTANTIATE_TEST_SUITE_P(Criteria, OrderSweep, ::testing::Range(0, 5));

}  // namespace
}  // namespace na
