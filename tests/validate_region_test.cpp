// Equivalence tests for region-scoped validation: validate_region over a
// region covering the interesting geometry must report exactly the issues
// full validate_diagram reports — on clean patched diagrams (both empty),
// on deliberately corrupted diagrams (both the same non-empty set), and
// across the incremental engine's edit-scenario corpus where the region is
// the patch router's dirty hull.  Issue lists are compared sorted: the
// checker walks hash maps, so report order is not part of the contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "gen/datapath.hpp"
#include "gen/life.hpp"
#include "incremental/edit.hpp"
#include "incremental/session.hpp"
#include "route/net_order.hpp"
#include "route/router.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

RegenOptions life_options() {
  RegenOptions opt;
  opt.generator.placer.max_part_size = 3;
  opt.generator.placer.max_box_size = 3;
  opt.generator.placer.module_spacing = 1;
  opt.generator.placer.partition_spacing = 2;
  opt.generator.router.margin = 12;
  opt.generator.router.order_criterion =
      static_cast<int>(NetOrderCriterion::LongestFirst);
  return opt;
}

RegenOptions datapath_options() {
  RegenOptions opt;
  opt.generator.placer.max_part_size = 5;
  opt.generator.placer.max_box_size = 3;
  return opt;
}

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// A rect no diagram geometry escapes: full validation through the region-
/// scoped code path.
constexpr geom::Rect kEverywhere{{-1000, -1000}, {1000, 1000}};

/// Routed hand-placed LIFE diagram, rebuilt fresh so tests can corrupt it.
Diagram routed_life(const Network& net) {
  Diagram dia(net);
  gen::life_hand_placement(dia);
  const RegenOptions opt = life_options();
  EXPECT_EQ(route_all(dia, opt.generator.router).nets_failed, 0);
  return dia;
}

TEST(ValidateRegion, EmptyRegionReportsNothing) {
  const Network net = gen::life_network();
  const Diagram dia = routed_life(net);
  EXPECT_TRUE(validate_region(dia, geom::Rect{}).empty());
}

TEST(ValidateRegion, CleanDiagramIsCleanEverywhere) {
  const Network net = gen::life_network();
  const Diagram dia = routed_life(net);
  EXPECT_TRUE(validate_diagram(dia).empty());
  EXPECT_TRUE(validate_region(dia, kEverywhere).empty());
}

// Three injected violations at once — a net dragged through a module
// symbol, one net's polyline duplicated into another net (overlap + node
// contact), and a routed net with a deleted polyline (disconnected figure).
// Region validation over a region covering everything must reproduce the
// full report verbatim.
TEST(ValidateRegion, WholeBoundsEqualsFullValidationOnCorruptedDiagram) {
  const Network net = gen::life_network();
  Diagram dia = routed_life(net);

  // Violation 1: a stray polyline of net 0 inside module 5's symbol.
  const geom::Rect sym = dia.module_rect(5);
  dia.route(0).polylines.push_back(
      {{sym.lo.x + 1, sym.lo.y + 1}, {sym.lo.x + 2, sym.lo.y + 1}});

  // Violation 2: net 2 claims a copy of net 1's first polyline.
  ASSERT_FALSE(dia.route(1).polylines.empty());
  dia.route(2).polylines.push_back(dia.route(1).polylines.front());

  // Violation 3: a multi-polyline routed net loses one figure.
  for (NetId n = 3; n < net.net_count(); ++n) {
    if (dia.route(n).routed && dia.route(n).polylines.size() > 1) {
      dia.route(n).polylines.pop_back();
      break;
    }
  }

  const std::vector<std::string> full = sorted(validate_diagram(dia));
  ASSERT_FALSE(full.empty());
  EXPECT_EQ(sorted(validate_region(dia, kEverywhere)), full);
}

// A corruption confined to a small region: validating just that region
// must report exactly what full validation reports (the rest of the
// diagram is clean, so the two sets coincide).
TEST(ValidateRegion, ScopedRegionSeesLocalCorruption) {
  const Network net = gen::life_network();
  Diagram dia = routed_life(net);

  const geom::Rect sym = dia.module_rect(4);
  dia.route(0).polylines.push_back(
      {{sym.lo.x + 1, sym.lo.y + 1}, {sym.lo.x + 2, sym.lo.y + 1}});

  const std::vector<std::string> full = sorted(validate_diagram(dia));
  ASSERT_FALSE(full.empty());
  EXPECT_EQ(sorted(validate_region(dia, sym.expanded(2))), full);
  // Looking somewhere else entirely sees nothing — out-of-region issues
  // are not searched for (that is the escalation rule's job).
  const geom::Rect elsewhere{{sym.hi.x + 50, sym.hi.y + 50},
                             {sym.hi.x + 60, sym.hi.y + 60}};
  EXPECT_TRUE(validate_region(dia, elsewhere).empty());
}

// require_all_routed: a net with drawn geometry flagged unrouted is
// reported by both modes when its geometry touches the region.
TEST(ValidateRegion, UnroutedNetWithGeometryIsReported) {
  const Network net = gen::life_network();
  Diagram dia = routed_life(net);
  for (NetId n = 0; n < net.net_count(); ++n) {
    if (dia.route(n).routed && !dia.route(n).polylines.empty()) {
      dia.route(n).routed = false;
      break;
    }
  }
  const std::vector<std::string> full =
      sorted(validate_diagram(dia, /*require_all_routed=*/true));
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(sorted(validate_region(dia, kEverywhere, true)), full);
}

// The edit-scenario corpus: every patched diagram, validated over the
// patch router's dirty hull (what RegenSession::update actually checks),
// must agree with full validation.  Both come out clean — the point is
// that the region verdict RegenSession trusts is never *weaker* than the
// full check on these diagrams.
TEST(ValidateRegion, DirtyRegionAgreesWithFullAcrossEditCorpus) {
  struct Scenario {
    const char* name;
    RegenOptions opt;
    Network base;
    Network edited;
    bool hand_placed;  ///< adopt the LIFE hand placement instead of generating
  };
  std::vector<Scenario> corpus;

  const Network life = gen::life_network();
  {
    NetworkEditor ed(life);
    ed.move_terminal("rule11", "we", {6, 11});
    corpus.push_back({"life_repin", life_options(), life, ed.build(), true});
  }
  {
    NetworkEditor ed(life);
    ed.add_module("probe", "probe", {4, 4});
    ed.add_module_terminal("probe", "i", TermType::In, {0, 2});
    ed.connect("mode", "probe", "i");
    corpus.push_back(
        {"life_add_module", life_options(), life, ed.build(), true});
  }
  {
    NetworkEditor ed(life);
    ed.remove_net("alive0");
    corpus.push_back(
        {"life_delete_net", life_options(), life, ed.build(), true});
  }
  const Network dp = gen::datapath_network({8});
  {
    NetworkEditor ed(dp);
    ed.add_module("probe", "probe", {4, 4});
    ed.add_module_terminal("probe", "i", TermType::In, {0, 2});
    ed.connect("b2_acc", "probe", "i");
    corpus.push_back(
        {"datapath_add_module", datapath_options(), dp, ed.build(), false});
  }
  {
    NetworkEditor ed(dp);
    ed.remove_net("stat");
    corpus.push_back(
        {"datapath_delete_net", datapath_options(), dp, ed.build(), false});
  }

  for (Scenario& s : corpus) {
    SCOPED_TRACE(s.name);
    RegenSession session(s.opt);
    if (s.hand_placed) {
      Diagram hand(s.base);
      gen::life_hand_placement(hand);
      ASSERT_EQ(route_all(hand, s.opt.generator.router).nets_failed, 0);
      session.adopt(s.base, hand);
    } else {
      session.update(s.base);
    }
    const Diagram& inc = session.update(s.edited);
    ASSERT_EQ(session.last().incremental, 1) << "corpus edit must be patchable";

    const geom::Rect dirty = session.last().dirty_region;
    EXPECT_FALSE(dirty.empty()) << "patch must report a dirty region";
    EXPECT_EQ(sorted(validate_region(inc, dirty)), sorted(validate_diagram(inc)));
    EXPECT_TRUE(validate_region(inc, dirty).empty());
  }
}

}  // namespace
}  // namespace na
