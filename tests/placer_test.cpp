// Tests for the full placement pipeline (PABLO) and the three baseline
// placers (min-cut, epitaxial, columnar).
#include <gtest/gtest.h>

#include "gen/chain.hpp"
#include "gen/controller.hpp"
#include "gen/random_net.hpp"
#include "place/columnar.hpp"
#include "place/epitaxial.hpp"
#include "place/mincut.hpp"
#include "place/placer.hpp"
#include "schematic/metrics.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

/// Placement-level validity: everything placed, no overlaps (the routing
/// checks don't apply yet).
void expect_placement_valid(const Diagram& dia) {
  const auto problems = validate_diagram(dia);
  for (const auto& p : problems) ADD_FAILURE() << p;
}

TEST(Placer, ChainSingleBox) {
  const Network net = gen::chain_network({6, false, true});
  Diagram dia(net);
  PlacerOptions opt;
  opt.max_part_size = 7;
  opt.max_box_size = 7;
  const PlacementInfo info = place(dia, opt);
  expect_placement_valid(dia);
  // One partition, one box of all six modules (the figure 6.1 structure).
  ASSERT_EQ(info.partitions.size(), 1u);
  ASSERT_EQ(info.boxes[0].size(), 1u);
  EXPECT_EQ(info.boxes[0][0].size(), 6u);
  // Left-to-right flow: each successor sits right of its predecessor.
  for (size_t i = 1; i < info.boxes[0][0].size(); ++i) {
    EXPECT_GT(dia.placed(info.boxes[0][0][i]).pos.x,
              dia.placed(info.boxes[0][0][i - 1]).pos.x);
  }
  // No flow violations in a pure chain.
  EXPECT_EQ(flow_violations(dia), 0);
}

TEST(Placer, DefaultsMatchAppendixE) {
  const PlacerOptions opt;
  EXPECT_EQ(opt.max_part_size, 1);
  EXPECT_EQ(opt.max_box_size, 1);
  EXPECT_EQ(opt.partition_spacing, 0);
  EXPECT_EQ(opt.box_spacing, 0);
  EXPECT_EQ(opt.module_spacing, 0);
}

TEST(Placer, ControllerConfigs) {
  const Network net = gen::controller_network();
  // The figure 6.2/6.3/6.4 configurations must all place validly.
  struct Cfg {
    int p, b;
  };
  for (const Cfg cfg : {Cfg{1, 1}, Cfg{5, 1}, Cfg{7, 5}}) {
    Diagram dia(net);
    PlacerOptions opt;
    opt.max_part_size = cfg.p;
    opt.max_box_size = cfg.b;
    const PlacementInfo info = place(dia, opt);
    expect_placement_valid(dia);
    size_t total = 0;
    for (const auto& part : info.partitions) total += part.size();
    EXPECT_EQ(total, 16u);
  }
}

TEST(Placer, StringsEnforceLeftToRightInsideBoxes) {
  // The level assignment guarantees left-to-right flow *within* each box:
  // every drive edge between successive string members runs rightward.
  // (Across boxes the loops of this network necessarily produce some
  // backward nets — rule 3 says "as far as possible".)
  const Network net = gen::controller_network();
  Diagram dia(net);
  PlacerOptions opt;
  opt.max_part_size = 7;
  opt.max_box_size = 5;
  const PlacementInfo info = place(dia, opt);
  bool saw_string = false;
  for (const auto& part : info.boxes) {
    for (const Box& box : part) {
      saw_string |= box.size() > 1;
      for (size_t i = 1; i < box.size(); ++i) {
        EXPECT_LT(dia.module_rect(box[i - 1]).hi.x, dia.module_rect(box[i]).lo.x);
      }
    }
  }
  EXPECT_TRUE(saw_string);  // the -b 5 config must actually form strings
}

TEST(Placer, SystemTerminalsOnRing) {
  const Network net = gen::controller_network();
  Diagram dia(net);
  place(dia, {});
  for (TermId st : net.system_terms()) {
    EXPECT_TRUE(dia.system_term_placed(st));
  }
  expect_placement_valid(dia);
}

TEST(Placer, PreplacedModulesKept) {
  const Network net = gen::controller_network();
  Diagram dia(net);
  const ModuleId pinned = *net.module_by_name("ctrl");
  dia.place_module(pinned, {50, 50}, geom::Rot::R0, /*fixed=*/true);
  PlacerOptions opt;
  opt.max_part_size = 5;
  place(dia, opt);
  EXPECT_EQ(dia.placed(pinned).pos, (geom::Point{50, 50}));
  expect_placement_valid(dia);
}

TEST(Placer, EmptyNetworkTerminalsOnly) {
  Network net;
  net.add_system_terminal("a", TermType::In);
  net.add_system_terminal("b", TermType::Out);
  Diagram dia(net);
  place(dia, {});
  EXPECT_TRUE(dia.system_term_placed(net.system_terms()[0]));
  EXPECT_NE(dia.term_pos(net.system_terms()[0]),
            dia.term_pos(net.system_terms()[1]));
}

TEST(Placer, RandomNetworksAlwaysValid) {
  for (unsigned seed = 1; seed <= 6; ++seed) {
    gen::RandomNetOptions gopt;
    gopt.modules = 12;
    gopt.seed = seed;
    const Network net = gen::random_network(gopt);
    for (int p : {1, 4}) {
      Diagram dia(net);
      PlacerOptions opt;
      opt.max_part_size = p;
      opt.max_box_size = p;
      place(dia, opt);
      expect_placement_valid(dia);
    }
  }
}

// --- min-cut baseline --------------------------------------------------------

TEST(Mincut, BipartitionBalanced) {
  const Network net = gen::controller_network();
  std::vector<ModuleId> all(net.module_count());
  for (int i = 0; i < net.module_count(); ++i) all[i] = i;
  const auto a = mincut_bipartition(net, all, 8);
  EXPECT_EQ(a.size(), 8u);
}

TEST(Mincut, ImprovementNeverWorsensCut) {
  const Network net = gen::controller_network();
  std::vector<ModuleId> all(net.module_count());
  for (int i = 0; i < net.module_count(); ++i) all[i] = i;
  auto split_cut = [&](int passes) {
    const auto a = mincut_bipartition(net, all, passes);
    std::vector<ModuleId> b;
    for (ModuleId m : all) {
      if (std::find(a.begin(), a.end(), m) == a.end()) b.push_back(m);
    }
    return cut_size(net, a, b);
  };
  EXPECT_LE(split_cut(8), split_cut(0));
}

TEST(Mincut, PlacesValidly) {
  const Network net = gen::controller_network();
  Diagram dia(net);
  mincut_place(dia);
  expect_placement_valid(dia);
}

TEST(CutSize, CountsNetsAcross) {
  const Network net = gen::controller_network();
  // ctrl vs everything else: ctrl has 9 nets, all crossing.
  std::vector<ModuleId> rest;
  const ModuleId ctrl = *net.module_by_name("ctrl");
  for (int m = 0; m < net.module_count(); ++m) {
    if (m != ctrl) rest.push_back(m);
  }
  EXPECT_EQ(cut_size(net, {ctrl}, rest), 8);  // 'done' goes to a system term
}

// --- epitaxial baseline ---------------------------------------------------------

TEST(Epitaxial, PlacesValidly) {
  const Network net = gen::controller_network();
  Diagram dia(net);
  epitaxial_place(dia);
  expect_placement_valid(dia);
}

TEST(Epitaxial, ConnectedModulesNearby) {
  const Network net = gen::chain_network({5, false, false});
  Diagram dia(net);
  epitaxial_place(dia);
  // Chain neighbours end up closer (on average) than chain ends.
  const auto d01 = manhattan(dia.module_rect(0).center(), dia.module_rect(1).center());
  const auto d04 = manhattan(dia.module_rect(0).center(), dia.module_rect(4).center());
  EXPECT_LE(d01, d04);
}

// --- columnar baseline -----------------------------------------------------------

TEST(Columnar, LevelsFollowDependency) {
  const Network net = gen::chain_network({5, false, false});
  const auto levels = columnar_levels(net);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(levels[i], levels[i - 1] + 1);
}

TEST(Columnar, HandlesCycles) {
  // The controller network has feedback loops; levels must stay bounded.
  const Network net = gen::controller_network();
  const auto levels = columnar_levels(net);
  for (int l : levels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, net.module_count());
  }
}

TEST(Columnar, PlacesValidly) {
  const Network net = gen::chain_network({6, true, true});
  Diagram dia(net);
  columnar_place(dia);
  expect_placement_valid(dia);
  // Chain: strictly increasing column x positions.
  for (int i = 1; i < 6; ++i) {
    EXPECT_GT(dia.placed(i).pos.x, dia.placed(i - 1).pos.x);
  }
}

TEST(Columnar, ZeroFlowViolationsOnAcyclicChain) {
  const Network net = gen::chain_network({6, false, true});
  Diagram dia(net);
  columnar_place(dia);
  EXPECT_EQ(flow_violations(dia), 0);
}

}  // namespace
}  // namespace na
