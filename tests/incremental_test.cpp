// End-to-end tests for the incremental regeneration engine: edit scripts
// through RegenSession, with every incremental result run through the
// geometric validator and its metrics compared against a from-scratch
// regeneration of the same edited netlist.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "gen/datapath.hpp"
#include "gen/chain.hpp"
#include "gen/life.hpp"
#include "incremental/edit.hpp"
#include "incremental/session.hpp"
#include "route/net_order.hpp"
#include "route/router.hpp"
#include "schematic/escher_writer.hpp"
#include "schematic/metrics.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

RegenOptions datapath_options() {
  RegenOptions opt;
  opt.generator.placer.max_part_size = 5;
  opt.generator.placer.max_box_size = 3;
  return opt;
}

RegenOptions life_options() {
  RegenOptions opt;
  opt.generator.placer.max_part_size = 3;  // one partition per LIFE cell
  opt.generator.placer.max_box_size = 3;
  opt.generator.placer.module_spacing = 1;
  opt.generator.placer.partition_spacing = 2;
  opt.generator.router.margin = 12;
  opt.generator.router.order_criterion =
      static_cast<int>(NetOrderCriterion::LongestFirst);
  return opt;
}

/// Satellite contract: incremental metrics within 10% of the from-scratch
/// metrics on the same edited netlist.  The bound is one-sided — an
/// incremental result may be *better* than from-scratch (it keeps a
/// carefully routed baseline), it just must not be more than 10% worse.
/// Small counters get a small absolute floor so one rerouted corner does
/// not register as a relative blow-up.
void expect_within_10pct(const DiagramStats& inc, const DiagramStats& scratch) {
  auto close = [](int worse, int base, const char* what) {
    const double tol = std::max(6.0, 0.10 * std::abs(base));
    EXPECT_LE(worse - base, tol)
        << what << ": incremental " << worse << " vs from-scratch " << base;
  };
  EXPECT_EQ(inc.unrouted, scratch.unrouted);
  close(inc.wire_length, scratch.wire_length, "wire_length");
  close(inc.bends, scratch.bends, "bends");
  close(inc.crossings, scratch.crossings, "crossings");
}

TEST(Incremental, FirstUpdateIsFullGeneration) {
  const Network net = gen::datapath_network({6});
  RegenSession session(datapath_options());
  EXPECT_FALSE(session.has_diagram());
  const Diagram& dia = session.update(net);
  EXPECT_TRUE(session.has_diagram());
  EXPECT_EQ(session.last().full_regens, 1);
  EXPECT_EQ(session.last().incremental, 0);
  EXPECT_EQ(session.last().modules_replaced, net.module_count());
  EXPECT_TRUE(validate_diagram(dia).empty());
}

TEST(Incremental, NoOpUpdateKeepsEverything) {
  const Network net = gen::datapath_network({6});
  RegenSession session(datapath_options());
  session.update(net);
  const int routed = session.diagram().routed_count();

  const Diagram& dia = session.update(gen::datapath_network({6}));
  EXPECT_EQ(session.last().incremental, 1);
  EXPECT_EQ(session.last().full_regens, 0);
  EXPECT_EQ(session.last().nets_rerouted, 0);
  EXPECT_EQ(session.last().nets_kept, routed);
  EXPECT_EQ(session.last().modules_replaced, 0);
  EXPECT_TRUE(validate_diagram(dia).empty());
}

TEST(Incremental, AddedModuleTakesPatchPath) {
  const Network net = gen::datapath_network({8});
  RegenSession session(datapath_options());
  session.update(net);

  // Edit script: attach a probe module to one accumulator net.
  NetworkEditor ed(net);
  ed.add_module("probe", "probe", {4, 4});
  ed.add_module_terminal("probe", "i", TermType::In, {0, 2});
  ed.connect("b2_acc", "probe", "i");
  const Network edited = ed.build();

  const Diagram& inc = session.update(edited);
  EXPECT_EQ(session.last().incremental, 1) << "edit should be patchable";
  EXPECT_EQ(session.last().full_regens, 0);
  EXPECT_GT(session.last().modules_frozen, 0);
  EXPECT_LT(session.last().nets_rerouted, edited.net_count());
  EXPECT_GT(session.last().nets_kept, 0);
  EXPECT_TRUE(validate_diagram(inc).empty());

  RegenSession scratch(datapath_options());
  expect_within_10pct(compute_stats(inc), compute_stats(scratch.update(edited)));
}

TEST(Incremental, DeletedNetIsPureRoutingChange) {
  const Network net = gen::datapath_network({8});
  RegenSession session(datapath_options());
  session.update(net);
  std::vector<geom::Point> before_pos;
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    before_pos.push_back(session.diagram().placed(m).pos);
  }

  NetworkEditor ed(net);
  ed.remove_net("stat");  // controller status line goes away
  const Network edited = ed.build();
  ASSERT_EQ(edited.net_count(), net.net_count() - 1);

  const Diagram& inc = session.update(edited);
  EXPECT_EQ(session.last().incremental, 1);
  // Removing a net dirties no partition: placement untouched, nothing
  // rerouted, only the dead geometry scrubbed.
  EXPECT_EQ(session.last().modules_replaced, 0);
  EXPECT_EQ(session.last().nets_rerouted, 0);
  EXPECT_EQ(session.last().nets_kept, edited.net_count());
  EXPECT_GT(session.last().cells_scrubbed, 0);
  EXPECT_TRUE(validate_diagram(inc).empty());
  for (ModuleId m = 0; m < edited.module_count(); ++m) {
    EXPECT_EQ(inc.placed(m).pos, before_pos[m]) << edited.module(m).name;
  }

  RegenSession scratch(datapath_options());
  expect_within_10pct(compute_stats(inc), compute_stats(scratch.update(edited)));
}

TEST(Incremental, LargeEditFallsBackToFullRegen) {
  // A 6-module chain under -p 7 is a single partition: any placement-
  // relevant edit dirties 100% of partitions and must trip the fallback.
  const Network net = gen::chain_network({});
  RegenOptions opt;
  opt.generator.placer.max_part_size = 7;
  opt.generator.placer.max_box_size = 7;
  RegenSession session(opt);
  session.update(net);

  NetworkEditor ed(net);
  ed.remove_module("m2");  // breaks the chain's one partition
  const Network edited = ed.build();

  const Diagram& dia = session.update(edited);
  EXPECT_EQ(session.last().full_regens, 1);
  EXPECT_EQ(session.last().incremental, 0);
  EXPECT_EQ(session.totals().full_regens, 2);
  EXPECT_TRUE(validate_diagram(dia).empty());
}

TEST(Incremental, AdoptSeedsTheSession) {
  const Network net = gen::life_network();
  const RegenOptions opt = life_options();
  Diagram hand(net);
  gen::life_hand_placement(hand);
  ASSERT_EQ(route_all(hand, opt.generator.router).nets_failed, 0);

  RegenSession session(opt);
  session.adopt(net, hand);
  EXPECT_TRUE(session.has_diagram());
  EXPECT_EQ(session.placement().partitions.size(), 9u)  // one per LIFE cell
      << "adopt must re-derive the partition structure";

  // A no-op update after adopt keeps all 222 nets.
  session.update(gen::life_network());
  EXPECT_EQ(session.last().incremental, 1);
  EXPECT_EQ(session.last().nets_kept, net.net_count());
  EXPECT_EQ(session.last().nets_rerouted, 0);
}

// The ISSUE acceptance scenario: a single-module edit on the LIFE diagram
// re-routes < 25% of the 222 nets, passes the validator, and lands within
// 10% of a from-scratch regeneration of the same edited netlist.
TEST(Incremental, LifeSingleModuleEditReroutesUnderQuarter) {
  const Network net = gen::life_network();
  const RegenOptions opt = life_options();
  Diagram hand(net);
  gen::life_hand_placement(hand);
  ASSERT_EQ(route_all(hand, opt.generator.router).nets_failed, 0);

  RegenSession session(opt);
  session.adopt(net, hand);

  // Edit script: re-pin the write-enable output of the centre cell's rule
  // module two tracks down its right edge.
  NetworkEditor ed(net);
  ed.move_terminal("rule11", "we", {6, 11});
  const Network edited = ed.build();

  const Diagram& inc = session.update(edited);
  ASSERT_EQ(session.last().incremental, 1) << "edit must take the patch path";
  EXPECT_TRUE(validate_diagram(inc).empty());
  EXPECT_LT(session.last().nets_rerouted, edited.net_count() / 4)
      << "single-module edit must keep > 75% of the routing";
  EXPECT_EQ(session.last().nets_kept + session.last().nets_rerouted,
            edited.net_count());
  EXPECT_GT(session.last().modules_frozen, 20);

  // From-scratch baseline: the same hand placement + full route of the
  // edited netlist.
  Diagram scratch(edited);
  gen::life_hand_placement(scratch);
  ASSERT_EQ(route_all(scratch, opt.generator.router).nets_failed, 0);
  expect_within_10pct(compute_stats(inc), compute_stats(scratch));
}

// Gravity-seeded add-module placement: a module the editor attaches to the
// global mode net (10 endpoints spread over the whole LIFE array) must be
// placed near the net's gravity centre, not appended at the array edge —
// and because it then sits next to its pins, the mode net is *extended* in
// place instead of being scrubbed and re-searched across the plane.
TEST(Incremental, AddedModulePlacesNearNetGravity) {
  const Network net = gen::life_network();
  const RegenOptions opt = life_options();
  Diagram hand(net);
  gen::life_hand_placement(hand);
  ASSERT_EQ(route_all(hand, opt.generator.router).nets_failed, 0);

  RegenSession session(opt);
  session.adopt(net, hand);

  NetworkEditor ed(net);
  ed.add_module("probe", "probe", {4, 4});
  ed.add_module_terminal("probe", "i", TermType::In, {0, 2});
  ed.connect("mode", "probe", "i");
  const Network edited = ed.build();

  const Diagram& inc = session.update(edited);
  ASSERT_EQ(session.last().incremental, 1) << "edit must take the patch path";
  EXPECT_TRUE(validate_diagram(inc).empty());

  // Gravity centre of the probe's net over the already-placed endpoints.
  int sx = 0, sy = 0, cnt = 0;
  for (TermId t : net.net(*net.net_by_name("mode")).terms) {
    sx += hand.term_pos(t).x;
    sy += hand.term_pos(t).y;
    ++cnt;
  }
  const geom::Point center{sx / cnt, sy / cnt};

  const geom::Rect r = inc.module_rect(*inc.network().module_by_name("probe"));
  const geom::Point placed{(r.lo.x + r.hi.x) / 2, (r.lo.y + r.hi.y) / 2};
  const int dist = std::max(std::abs(placed.x - center.x),
                            std::abs(placed.y - center.y));
  // Edge placement puts the probe outside the frozen hull, half an array
  // (> 60 tracks) away from this centre; gravity seeding lands close by.
  EXPECT_LE(dist, 20) << "probe centre " << geom::to_string(placed)
                      << " vs net gravity " << geom::to_string(center);

  // Reroute cost must be far below the edge-placement behaviour, which
  // scrubbed the whole mode net (~1300 cells, > 100k search expansions).
  EXPECT_GE(session.last().nets_extended, 1) << "mode net must be extended";
  EXPECT_LE(session.last().nets_rerouted, 3);
  EXPECT_LT(session.last().cells_scrubbed, 200);
  EXPECT_LT(session.last().route_expansions, 20000);
  EXPECT_EQ(session.last().nets_kept + session.last().nets_rerouted,
            edited.net_count());
}

// Cross-thread determinism of the patch path: the kept-net scrub plus the
// PR-1 speculative parallel driver must produce byte-identical geometry for
// any thread count.  (Also the TSan entry point for the patch router.)
TEST(IncrementalParallel, PatchRouteIsThreadCountInvariant) {
  const Network net = gen::datapath_network({10});
  NetworkEditor ed(net);
  ed.add_module("probe", "probe", {4, 4});
  ed.add_module_terminal("probe", "i", TermType::In, {0, 2});
  ed.connect("b4_acc", "probe", "i");
  ed.remove_net("stat");
  const Network edited = ed.build();

  RegenOptions opt1 = datapath_options();
  opt1.generator.router.threads = 1;
  RegenOptions opt4 = datapath_options();
  opt4.generator.router.threads = 4;
  RegenSession s1(opt1);
  RegenSession s4(opt4);
  s1.update(net);
  s4.update(net);

  const Diagram& seq = s1.update(edited);
  const Diagram& par = s4.update(edited);
  ASSERT_EQ(s1.last().incremental, 1);
  ASSERT_EQ(s4.last().incremental, 1);
  for (ModuleId m = 0; m < edited.module_count(); ++m) {
    ASSERT_EQ(seq.placed(m).pos, par.placed(m).pos) << edited.module(m).name;
  }
  for (NetId n = 0; n < edited.net_count(); ++n) {
    ASSERT_EQ(seq.route(n).polylines, par.route(n).polylines)
        << edited.net(n).name;
  }
  EXPECT_TRUE(validate_diagram(par).empty());
}

// ----- session save/restore --------------------------------------------------

// The daemon contract (na_serve kill/restart): save() captures network,
// partition/box structure and routed diagram; restore() rebuilds a session
// whose next update() is byte-identical to the one the original session
// would have produced.
TEST(SessionPersistence, RoutedLifeSessionRoundTrips) {
  const RegenOptions opt = life_options();
  RegenSession original(opt);
  Network net = gen::life_network();
  original.update(net);

  // A couple of edits so the saved state is a genuinely patched session,
  // not a fresh full generation.
  {
    NetworkEditor ed(net);
    ed.add_module("probe", "", {6, 4});
    ed.add_module_terminal("probe", "t0", TermType::In, {0, 2});
    net = ed.build();
    original.update(net);
  }

  const std::string blob = original.save();
  EXPECT_EQ(blob.rfind("#NA-SESSION-1", 0), 0u);

  RegenSession reloaded(opt);
  reloaded.restore(blob);
  EXPECT_TRUE(reloaded.has_diagram());
  EXPECT_EQ(reloaded.totals().updates, 0) << "counters start at zero";

  // Identical geometry right away...
  EXPECT_EQ(to_escher_diagram(reloaded.diagram(), "s"),
            to_escher_diagram(original.diagram(), "s"));
  // ...and the *same* placement structure, so the next edit diverges
  // nowhere: apply one more edit to both sessions and compare bytes.
  NetworkEditor ed(net);
  ed.move_terminal("rule11", "we", {6, 11});
  const Network edited = ed.build();
  const Diagram& a = original.update(edited);
  const Diagram& b = reloaded.update(edited);
  EXPECT_EQ(to_escher_diagram(b, "s"), to_escher_diagram(a, "s"))
      << "restored session diverged on the first post-restore edit";
  EXPECT_EQ(reloaded.last().incremental, original.last().incremental);
  EXPECT_EQ(reloaded.last().nets_rerouted, original.last().nets_rerouted);
  EXPECT_TRUE(validate_diagram(b).empty());
}

TEST(SessionPersistence, SaveRequiresDiagramAndRestoreIsStrict) {
  RegenSession empty;
  EXPECT_THROW(empty.save(), std::exception);

  RegenSession session(datapath_options());
  session.update(gen::datapath_network({}));
  const std::string blob = session.save();

  const char* bad[] = {
      "",
      "#WRONG-HEADER-1\n",
      "#NA-SESSION-1\nmodule not-a-number 4 m\n",
      "#NA-SESSION-1\nterm 0 in 0 0 t\n",  // terminal before any module
      "#NA-SESSION-1\nconn 99 99\n",
      "#NA-SESSION-1\nmodule 4 4 m\n",  // truncated: no end marker
  };
  for (const char* text : bad) {
    RegenSession scratch;
    EXPECT_THROW(scratch.restore(text), std::runtime_error)
        << "input: " << text;
  }

  // Corrupting a structural line inside a valid blob must also throw, not
  // install half a session.
  std::string corrupt = blob;
  const size_t at = corrupt.find("\npart ");
  ASSERT_NE(at, std::string::npos);
  corrupt.replace(at, 6, "\npart x");
  RegenSession scratch;
  EXPECT_THROW(scratch.restore(corrupt), std::runtime_error);
}

}  // namespace
}  // namespace na
