// Scale-tier synthetic netlist generator: seeded byte-determinism, target
// fan-out, and structural validity across all three topologies.
#include "gen/synth.hpp"

#include <gtest/gtest.h>

#include "netlist/netlist_io.hpp"

namespace na {
namespace {

gen::SynthOptions opts(gen::SynthTopology topo, int modules,
                       std::uint64_t seed = 1) {
  gen::SynthOptions o;
  o.topology = topo;
  o.modules = modules;
  o.seed = seed;
  return o;
}

std::string serialized(const Network& net) {
  const NetlistFiles files = write_network(net);
  return files.call_file + "\x01" + files.io_file + "\x01" + files.netlist_file;
}

/// Seed-sensitive detail the netlist files do not carry: module sizes and
/// terminal offsets.
std::string geometry(const Network& net) {
  std::string out;
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    const auto& mod = net.module(m);
    out += geom::to_string(mod.size);
    for (TermId t : mod.terms) out += geom::to_string(net.term(t).pos);
    out += '\n';
  }
  return out;
}

TEST(SynthGen, SeededByteDeterminism) {
  for (const gen::SynthTopology topo :
       {gen::SynthTopology::GridMesh, gen::SynthTopology::Torus,
        gen::SynthTopology::RandomDag}) {
    const Network a = gen::synth_network(opts(topo, 200, 7));
    const Network b = gen::synth_network(opts(topo, 200, 7));
    EXPECT_EQ(serialized(a), serialized(b)) << gen::to_string(topo);
    EXPECT_EQ(geometry(a), geometry(b)) << gen::to_string(topo);
  }
}

TEST(SynthGen, SeedChangesNetwork) {
  // Mesh/torus keep their connectivity by construction; the seed drives
  // module sizes and terminal jitter.  The DAG's edge structure itself is
  // seed-dependent.
  const Network a = gen::synth_network(opts(gen::SynthTopology::GridMesh, 100, 1));
  const Network b = gen::synth_network(opts(gen::SynthTopology::GridMesh, 100, 2));
  EXPECT_NE(geometry(a), geometry(b));
  const Network da = gen::synth_network(opts(gen::SynthTopology::RandomDag, 100, 1));
  const Network db = gen::synth_network(opts(gen::SynthTopology::RandomDag, 100, 2));
  EXPECT_NE(serialized(da), serialized(db));
}

TEST(SynthGen, HonoursModuleCountExactly) {
  // Including counts whose mesh has a partial last row.
  for (const int n : {1, 7, 50, 99, 128, 1000}) {
    for (const gen::SynthTopology topo :
         {gen::SynthTopology::GridMesh, gen::SynthTopology::Torus,
          gen::SynthTopology::RandomDag}) {
      EXPECT_EQ(gen::synth_network(opts(topo, n)).module_count(), n)
          << gen::to_string(topo) << " n=" << n;
    }
  }
}

TEST(SynthGen, GeneratedNetworksValidate) {
  for (const gen::SynthTopology topo :
       {gen::SynthTopology::GridMesh, gen::SynthTopology::Torus,
        gen::SynthTopology::RandomDag}) {
    for (const int n : {9, 100, 500}) {
      const Network net = gen::synth_network(opts(topo, n, 3));
      const auto problems = net.validate();
      EXPECT_TRUE(problems.empty())
          << gen::to_string(topo) << " n=" << n << ": " << problems.front();
    }
  }
}

TEST(SynthGen, DagHitsFanoutTarget) {
  gen::SynthOptions o = opts(gen::SynthTopology::RandomDag, 400);
  o.fanout_mean = 2.5;
  const Network net = gen::synth_network(o);
  // Edges = sink terminals over all nets (every net has one driver).
  long long edges = 0;
  for (NetId n = 0; n < net.net_count(); ++n) {
    edges += static_cast<long long>(net.net(n).terms.size()) - 1;
  }
  const double measured = static_cast<double>(edges) / o.modules;
  EXPECT_NEAR(measured, o.fanout_mean, 0.25);
}

TEST(SynthGen, ParseTopologyRoundTrips) {
  EXPECT_EQ(gen::parse_topology("grid"), gen::SynthTopology::GridMesh);
  EXPECT_EQ(gen::parse_topology("torus"), gen::SynthTopology::Torus);
  EXPECT_EQ(gen::parse_topology("dag"), gen::SynthTopology::RandomDag);
  EXPECT_FALSE(gen::parse_topology("ring").has_value());
  for (const gen::SynthTopology topo :
       {gen::SynthTopology::GridMesh, gen::SynthTopology::Torus,
        gen::SynthTopology::RandomDag}) {
    EXPECT_EQ(gen::parse_topology(gen::to_string(topo)), topo);
  }
}

}  // namespace
}  // namespace na
