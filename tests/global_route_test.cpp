// Tests for the global-routing substrate (section 5.2.1): capacity
// derivation, tree connectivity per net, congestion accounting, and
// bottleneck avoidance.
#include <gtest/gtest.h>

#include <queue>

#include "gen/controller.hpp"
#include "gen/life.hpp"
#include "gen/random_net.hpp"
#include "netlist/module_library.hpp"
#include "place/placer.hpp"
#include "route/global.hpp"

namespace na {
namespace {

Diagram placed_controller() {
  static const Network* net = new Network(gen::controller_network());
  Diagram dia(*net);
  PlacerOptions opt;
  opt.max_part_size = 5;
  opt.max_connections = 8;
  place(dia, opt);
  return dia;
}

TEST(GlobalRoute, GridDimensions) {
  const Diagram dia = placed_controller();
  GlobalRouteOptions opt;
  opt.gcell_size = 8;
  const GlobalRouteResult r = global_route(dia, opt);
  EXPECT_GT(r.cols, 1);
  EXPECT_GT(r.rows, 1);
  EXPECT_EQ(r.h_capacity.size(),
            static_cast<size_t>(r.cols) * (r.rows - 1));
  EXPECT_EQ(r.v_capacity.size(),
            static_cast<size_t>(r.cols - 1) * r.rows);
}

TEST(GlobalRoute, EveryNetAssigned) {
  const Diagram dia = placed_controller();
  const GlobalRouteResult r = global_route(dia);
  EXPECT_EQ(r.failed, 0);
  EXPECT_EQ(r.assigned, static_cast<int>(r.nets.size()));
  EXPECT_EQ(r.assigned, dia.network().net_count());
}

TEST(GlobalRoute, TreesConnectAllPins) {
  const Diagram dia = placed_controller();
  GlobalRouteOptions opt;
  opt.gcell_size = 6;
  const GlobalRouteResult r = global_route(dia, opt);
  const Network& net = dia.network();
  const int g = opt.gcell_size;
  for (const GlobalNetRoute& gr : r.nets) {
    ASSERT_TRUE(gr.routed);
    // Gather the tree's gcells + the pins' gcells; BFS over segments must
    // reach every pin gcell from the first.
    std::vector<geom::Point> pins;
    for (TermId t : net.net(gr.net).terms) {
      const geom::Point p = dia.term_pos(t);
      pins.push_back({(p.x - r.area.lo.x) / g, (p.y - r.area.lo.y) / g});
    }
    auto key = [&](geom::Point c) { return c.y * r.cols + c.x; };
    std::vector<std::vector<int>> adj(static_cast<size_t>(r.cols) * r.rows);
    for (const GlobalSegment& s : gr.segments) {
      adj[key(s.from)].push_back(key(s.to));
      adj[key(s.to)].push_back(key(s.from));
    }
    std::vector<bool> seen(adj.size(), false);
    std::queue<int> frontier;
    frontier.push(key(pins[0]));
    seen[key(pins[0])] = true;
    while (!frontier.empty()) {
      const int cur = frontier.front();
      frontier.pop();
      for (int nxt : adj[cur]) {
        if (!seen[nxt]) {
          seen[nxt] = true;
          frontier.push(nxt);
        }
      }
    }
    for (const geom::Point pin : pins) {
      EXPECT_TRUE(seen[key(pin)])
          << "net " << net.net(gr.net).name << " pin gcell unreached";
    }
  }
}

TEST(GlobalRoute, DemandMatchesSegments) {
  const Diagram dia = placed_controller();
  const GlobalRouteResult r = global_route(dia);
  long demand_sum = 0;
  for (int d : r.h_demand) demand_sum += d;
  for (int d : r.v_demand) demand_sum += d;
  long seg_count = 0;
  for (const GlobalNetRoute& gr : r.nets) seg_count += gr.segments.size();
  EXPECT_EQ(demand_sum, seg_count);
}

TEST(GlobalRoute, ModuleWallsReduceCapacity) {
  // A solid wall of modules between two halves: boundaries crossing the
  // wall must have (near) zero capacity.
  Network net;
  net.add_module("wall", "", {4, 40});
  Diagram dia(net);
  dia.place_module(0, {20, 0});
  GlobalRouteOptions opt;
  opt.gcell_size = 8;
  opt.margin = 4;
  const GlobalRouteResult r = global_route(dia, opt);
  // Vertical boundaries at the wall's x range have less capacity than the
  // open ones.
  int min_cap = std::numeric_limits<int>::max();
  int max_cap = 0;
  for (int c : r.v_capacity) {
    min_cap = std::min(min_cap, c);
    max_cap = std::max(max_cap, c);
  }
  EXPECT_LT(min_cap, max_cap);
}

TEST(GlobalRoute, CongestionPushesNetsApart) {
  // Many parallel nets across one narrow gap: with overflow pricing the
  // max boundary congestion stays below the all-through-one-edge worst
  // case whenever alternative boundaries exist.
  gen::RandomNetOptions gopt;
  gopt.modules = 16;
  gopt.extra_nets = 14;
  gopt.seed = 9;
  const Network net = gen::random_network(gopt);
  Diagram dia(net);
  PlacerOptions popt;
  popt.max_part_size = 4;
  place(dia, popt);
  GlobalRouteOptions on;
  const GlobalRouteResult with_pricing = global_route(dia, on);
  GlobalRouteOptions off = on;
  off.overflow_cost = 0;  // pure shortest path, no avoidance
  const GlobalRouteResult without = global_route(dia, off);
  EXPECT_LE(with_pricing.total_overflow, without.total_overflow);
}

TEST(GlobalRoute, LifeBoardStats) {
  const Network net = gen::life_network();
  Diagram dia(net);
  gen::life_hand_placement(dia);
  const GlobalRouteResult r = global_route(dia);
  EXPECT_EQ(r.failed, 0);
  EXPECT_EQ(r.assigned, 222);
  EXPECT_GT(r.max_congestion, 0);
}

TEST(GlobalRoute, EmptyDiagram) {
  Network net;
  Diagram dia(net);
  const GlobalRouteResult r = global_route(dia);
  EXPECT_EQ(r.cols, 0);
  EXPECT_TRUE(r.nets.empty());
}

}  // namespace
}  // namespace na
