// Unit tests for the network model, the module library and the Appendix-A
// net-list file formats.
#include <gtest/gtest.h>

#include "netlist/module_library.hpp"
#include "netlist/netlist_io.hpp"
#include "netlist/network.hpp"

namespace na {
namespace {

Network two_gate_network() {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "and2", "a0");
  lib.instantiate(net, "or2", "o0");
  const NetId n = net.add_net("n0");
  net.connect(n, *net.term_by_name(0, "y"));
  net.connect(n, *net.term_by_name(1, "a"));
  return net;
}

TEST(TermType, Parse) {
  EXPECT_EQ(parse_term_type("in"), TermType::In);
  EXPECT_EQ(parse_term_type("out"), TermType::Out);
  EXPECT_EQ(parse_term_type("inout"), TermType::InOut);
  EXPECT_FALSE(parse_term_type("input").has_value());
  EXPECT_EQ(to_string(TermType::InOut), "inout");
}

TEST(TermType, Drives) {
  EXPECT_TRUE(drives(TermType::Out, TermType::In));
  EXPECT_TRUE(drives(TermType::Out, TermType::InOut));
  EXPECT_TRUE(drives(TermType::InOut, TermType::In));
  EXPECT_TRUE(drives(TermType::InOut, TermType::InOut));
  EXPECT_FALSE(drives(TermType::In, TermType::Out));
  EXPECT_FALSE(drives(TermType::Out, TermType::Out));
  EXPECT_FALSE(drives(TermType::In, TermType::In));
}

TEST(Network, Build) {
  Network net;
  const ModuleId m = net.add_module("m", "tpl", {4, 2});
  EXPECT_EQ(net.module_count(), 1);
  EXPECT_EQ(net.module(m).name, "m");
  EXPECT_EQ(net.module(m).size, (geom::Point{4, 2}));
  const TermId t = net.add_terminal(m, "a", TermType::In, {0, 1});
  EXPECT_EQ(net.term(t).module, m);
  EXPECT_EQ(net.term(t).net, kNone);
  EXPECT_FALSE(net.term(t).is_system());
  const TermId st = net.add_system_terminal("x", TermType::In);
  EXPECT_TRUE(net.term(st).is_system());
  EXPECT_EQ(net.system_terms().size(), 1u);
}

TEST(Network, RejectsBadInput) {
  Network net;
  EXPECT_THROW(net.add_module("bad", "", {0, 2}), std::invalid_argument);
  const ModuleId m = net.add_module("m", "", {4, 2});
  // Terminal strictly inside the outline.
  EXPECT_THROW(net.add_terminal(m, "t", TermType::In, {2, 1}), std::invalid_argument);
  EXPECT_THROW(net.add_terminal(m, "t", TermType::In, {9, 0}), std::invalid_argument);
  // Double connection.
  const TermId t = net.add_terminal(m, "a", TermType::In, {0, 1});
  const NetId n0 = net.add_net("n0");
  const NetId n1 = net.add_net("n1");
  net.connect(n0, t);
  net.connect(n0, t);  // idempotent
  EXPECT_THROW(net.connect(n1, t), std::invalid_argument);
}

TEST(Network, Lookups) {
  const Network net = two_gate_network();
  EXPECT_EQ(net.module_by_name("a0"), 0);
  EXPECT_EQ(net.module_by_name("o0"), 1);
  EXPECT_FALSE(net.module_by_name("zz").has_value());
  EXPECT_TRUE(net.net_by_name("n0").has_value());
  EXPECT_FALSE(net.net_by_name("n9").has_value());
  EXPECT_TRUE(net.term_by_name(0, "a").has_value());
  EXPECT_FALSE(net.term_by_name(0, "q").has_value());
}

TEST(Network, GetOrAddNet) {
  Network net;
  const NetId a = net.get_or_add_net("x");
  const NetId b = net.get_or_add_net("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(net.net_count(), 1);
  EXPECT_NE(net.get_or_add_net("y"), a);
}

TEST(Network, TermSide) {
  const Network net = two_gate_network();
  // and2: a at (0,1) left, y at (4,2) right.
  EXPECT_EQ(net.term_side(*net.term_by_name(0, "a")), geom::Side::Left);
  EXPECT_EQ(net.term_side(*net.term_by_name(0, "y")), geom::Side::Right);
}

TEST(Network, Connectivity) {
  const Network net = two_gate_network();
  EXPECT_TRUE(net.connected_by(0, 1, 0));
  EXPECT_EQ(net.connections(0, 1), 1);
  EXPECT_EQ(net.connections(1, 0), 1);
  EXPECT_EQ(net.connections(0, 0), 0);
  EXPECT_EQ(net.neighbors(0), std::vector<ModuleId>{1});
  EXPECT_EQ(net.nets_of(0), std::vector<NetId>{0});
}

TEST(Network, ConnectionsCountNetsNotTerminals) {
  // Two modules joined by one multi-terminal net must count as 1 connection.
  Network net;
  const ModuleId a = net.add_module("a", "", {4, 4});
  const ModuleId b = net.add_module("b", "", {4, 4});
  const TermId a0 = net.add_terminal(a, "p", TermType::Out, {4, 1});
  const TermId a1 = net.add_terminal(a, "q", TermType::Out, {4, 3});
  const TermId b0 = net.add_terminal(b, "p", TermType::In, {0, 1});
  const NetId n = net.add_net("n");
  net.connect(n, a0);
  net.connect(n, a1);
  net.connect(n, b0);
  EXPECT_EQ(net.connections(a, b), 1);
}

TEST(Network, ExternalConnections) {
  const Network net = two_gate_network();
  std::vector<bool> only_a{true, false};
  EXPECT_EQ(net.external_connections(only_a), 1);
  std::vector<bool> both{true, true};
  EXPECT_EQ(net.external_connections(both), 0);
}

TEST(Network, Validate) {
  Network net = two_gate_network();
  EXPECT_TRUE(net.validate().empty());
  net.add_net("dangling");  // < 2 terminals
  EXPECT_EQ(net.validate().size(), 1u);
}

TEST(ModuleLibrary, StandardCells) {
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  EXPECT_TRUE(lib.contains("and2"));
  EXPECT_TRUE(lib.contains("dff"));
  EXPECT_TRUE(lib.contains("ctrl"));
  EXPECT_FALSE(lib.contains("nope"));
  EXPECT_GE(lib.size(), 10);
  // Every template's terminals are on its perimeter with unique names.
  for (const std::string& name : lib.names()) {
    const ModuleTemplate* t = lib.find(name);
    ASSERT_NE(t, nullptr);
    for (const TemplateTerm& term : t->terms) {
      EXPECT_TRUE(geom::on_perimeter(term.pos, t->size))
          << name << "." << term.name;
    }
  }
}

TEST(ModuleLibrary, Instantiate) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const ModuleId m = lib.instantiate(net, "dff", "ff0");
  EXPECT_EQ(net.module(m).template_name, "dff");
  EXPECT_EQ(net.module(m).terms.size(), 4u);
  EXPECT_THROW(lib.instantiate(net, "nope", "x"), std::runtime_error);
}

TEST(ModuleDescription, ParseAndFormat) {
  const char* text =
      "module half_adder 6 4\n"
      "in a 0 1\n"
      "in b 0 3\n"
      "out s 6 2\n"
      "out c 3 4\n";
  const ModuleTemplate t = parse_module_description(text);
  EXPECT_EQ(t.name, "half_adder");
  EXPECT_EQ(t.size, (geom::Point{6, 4}));
  ASSERT_EQ(t.terms.size(), 4u);
  EXPECT_EQ(t.terms[2].name, "s");
  EXPECT_EQ(t.terms[2].type, TermType::Out);
  EXPECT_EQ(t.terms[2].pos, (geom::Point{6, 2}));
  // Round trip.
  EXPECT_EQ(format_module_description(t), text);
}

TEST(ModuleDescription, PitchDivision) {
  // Appendix B: historical files use coordinates divisible by 10.
  const ModuleTemplate t =
      parse_module_description("module m 40 20\nin a 0 10\n", 10);
  EXPECT_EQ(t.size, (geom::Point{4, 2}));
  EXPECT_EQ(t.terms[0].pos, (geom::Point{0, 1}));
  EXPECT_THROW(parse_module_description("module m 45 20\n", 10), std::runtime_error);
}

TEST(ModuleDescription, Errors) {
  EXPECT_THROW(parse_module_description(""), std::runtime_error);
  EXPECT_THROW(parse_module_description("modul m 4 2\n"), std::runtime_error);
  EXPECT_THROW(parse_module_description("module m 4\n"), std::runtime_error);
  EXPECT_THROW(parse_module_description("module m 0 2\n"), std::runtime_error);
  EXPECT_THROW(parse_module_description("module m 4 2\nin a 2 1\n"),
               std::runtime_error);  // off perimeter
  EXPECT_THROW(parse_module_description("module m 4 2\nzz a 0 1\n"),
               std::runtime_error);  // bad type
  EXPECT_THROW(parse_module_description("module m 4 2\nin a x 1\n"),
               std::runtime_error);  // non-integer
}

TEST(NetlistIo, ParseSimple) {
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const Network net = parse_network(lib,
                                    "a0 and2\n"
                                    "o0 or2\n",
                                    "x in\n"
                                    "y out\n",
                                    "n0 a0 y\n"
                                    "n0 o0 a\n"
                                    "pi root x\n"
                                    "pi a0 a\n"
                                    "po o0 y\n"
                                    "po root y\n");
  EXPECT_EQ(net.module_count(), 2);
  EXPECT_EQ(net.net_count(), 3);
  EXPECT_EQ(net.system_terms().size(), 2u);
  EXPECT_TRUE(net.validate().empty());
  EXPECT_EQ(net.connections(0, 1), 1);
}

TEST(NetlistIo, CommentsAndBlankLines) {
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const Network net = parse_network(lib,
                                    "# instances\n\na0 and2\n", "",
                                    "n0 a0 y   # net record\nn0 a0 a\n");
  EXPECT_EQ(net.module_count(), 1);
  EXPECT_EQ(net.net_count(), 1);
}

TEST(NetlistIo, Errors) {
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  EXPECT_THROW(parse_network(lib, "a0 nosuch\n", "", ""), std::runtime_error);
  EXPECT_THROW(parse_network(lib, "a0 and2\na0 or2\n", "", ""), std::runtime_error);
  EXPECT_THROW(parse_network(lib, "root and2\n", "", ""), std::runtime_error);
  EXPECT_THROW(parse_network(lib, "a0 and2\n", "x zz\n", ""), std::runtime_error);
  EXPECT_THROW(parse_network(lib, "a0 and2\n", "", "n0 b0 a\n"), std::runtime_error);
  EXPECT_THROW(parse_network(lib, "a0 and2\n", "", "n0 a0 zz\n"), std::runtime_error);
  EXPECT_THROW(parse_network(lib, "a0 and2\n", "", "n0 root zz\n"), std::runtime_error);
  EXPECT_THROW(parse_network(lib, "a0\n", "", ""), std::runtime_error);
}

TEST(NetlistIo, RoundTrip) {
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const Network original = parse_network(lib,
                                         "a0 and2\no0 or2\nf0 dff\n",
                                         "x in\nq out\n",
                                         "n0 a0 y\nn0 o0 a\nn1 o0 y\nn1 f0 d\n"
                                         "pi root x\npi a0 a\n"
                                         "po f0 q\npo root q\n");
  const NetlistFiles files = write_network(original);
  const Network reparsed = parse_network(lib, files.call_file, files.io_file,
                                         files.netlist_file);
  EXPECT_EQ(reparsed.module_count(), original.module_count());
  EXPECT_EQ(reparsed.net_count(), original.net_count());
  EXPECT_EQ(reparsed.term_count(), original.term_count());
  for (int m = 0; m < original.module_count(); ++m) {
    EXPECT_EQ(reparsed.module(m).name, original.module(m).name);
    EXPECT_EQ(reparsed.module(m).size, original.module(m).size);
  }
  for (int n = 0; n < original.net_count(); ++n) {
    EXPECT_EQ(reparsed.net(n).terms.size(), original.net(n).terms.size());
  }
}

}  // namespace
}  // namespace na
