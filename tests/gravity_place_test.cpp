// Unit tests for the gravity placement engine (box/partition placement,
// sections 4.6.5/4.6.6) and the system terminal placement (4.6.7).
#include <gtest/gtest.h>

#include "gen/controller.hpp"
#include "netlist/module_library.hpp"
#include "place/box_place.hpp"
#include "place/gravity.hpp"
#include "place/partition_place.hpp"
#include "place/terminal_place.hpp"

namespace na {
namespace {

TEST(NearestFreePosition, IdealWhenFree) {
  EXPECT_EQ(nearest_free_position({5, 5}, {2, 2}, {}, 0), (geom::Point{5, 5}));
}

TEST(NearestFreePosition, DodgesOverlap) {
  const std::vector<geom::Rect> placed{geom::Rect::from_size({0, 0}, {10, 10})};
  const geom::Point p = nearest_free_position({4, 4}, {2, 2}, placed, 0);
  EXPECT_FALSE(geom::Rect::from_size(p, {2, 2}).overlaps(placed[0]));
  // Nearest free spot: just outside one face of the block.
  const std::int64_t d2 = geom::dist2(p, {4, 4});
  EXPECT_LE(d2, 49);  // within reach of the block faces
}

TEST(NearestFreePosition, RespectsSpacing) {
  const std::vector<geom::Rect> placed{geom::Rect::from_size({0, 0}, {4, 4})};
  const geom::Point p = nearest_free_position({0, 0}, {2, 2}, placed, 3);
  EXPECT_FALSE(
      geom::Rect::from_size(p, {2, 2}).expanded(3).overlaps(placed[0]));
}

TEST(NearestFreePosition, ExactNearest) {
  // With a wall on the left, the nearest free x must be just right of it.
  std::vector<geom::Rect> placed{geom::Rect::from_size({0, 0}, {10, 100})};
  const geom::Point p = nearest_free_position({5, 50}, {2, 2}, placed, 0);
  EXPECT_EQ(p, (geom::Point{11, 50}));
}

GravityItem item(geom::Point size, int weight,
                 std::vector<std::pair<NetId, geom::Point>> terms) {
  GravityItem it;
  it.size = size;
  it.weight = weight;
  it.terms = std::move(terms);
  return it;
}

TEST(GravityPlace, HeaviestFirstAtOrigin) {
  const std::vector<GravityItem> items{
      item({4, 4}, 1, {{0, {4, 2}}}),
      item({6, 6}, 5, {{0, {0, 3}}}),
  };
  const auto pos = gravity_place(items, 0);
  EXPECT_EQ(pos[1], (geom::Point{0, 0}));
}

TEST(GravityPlace, NoOverlaps) {
  std::vector<GravityItem> items;
  for (int i = 0; i < 8; ++i) {
    items.push_back(item({5, 3 + i % 3}, i,
                         {{i % 3, {0, 1}}, {(i + 1) % 3, {5, 1}}}));
  }
  const auto pos = gravity_place(items, 1);
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      EXPECT_FALSE(geom::Rect::from_size(pos[i], items[i].size)
                       .overlaps(geom::Rect::from_size(pos[j], items[j].size)))
          << i << " vs " << j;
    }
  }
}

TEST(GravityPlace, ConnectedItemsLandClose) {
  // Three items: 0 and 1 share a net, 2 is unrelated.  1 must end up
  // nearer to 0 than 2's distance-by-default.
  const std::vector<GravityItem> items{
      item({4, 4}, 3, {{0, {4, 2}}}),
      item({4, 4}, 1, {{0, {0, 2}}}),
      item({4, 4}, 2, {}),
  };
  const auto pos = gravity_place(items, 0);
  const auto d01 = geom::dist2(pos[0], pos[1]);
  const auto d02 = geom::dist2(pos[0], pos[2]);
  EXPECT_LT(d01, d02);
}

TEST(GravityPlace, FixedItemsStay) {
  std::vector<GravityItem> items{
      item({4, 4}, 1, {{0, {4, 2}}}),
      item({4, 4}, 9, {{0, {0, 2}}}),
  };
  items[0].fixed_pos = geom::Point{100, 100};
  const auto pos = gravity_place(items, 0);
  EXPECT_EQ(pos[0], (geom::Point{100, 100}));
  // The second is pulled toward the fixed one.
  EXPECT_LT(geom::dist2(pos[1], {100, 100}), 2000);
}

TEST(GravityPlace, IncrementalMatchesReference) {
  // The indexed/heap engine behind gravity_place must reproduce the
  // quadratic-rescan transcription position for position: mixed sizes,
  // weight ties, shared nets, item sets with and without fixed members.
  for (const int n : {1, 7, 40}) {
    std::vector<GravityItem> items;
    for (int i = 0; i < n; ++i) {
      GravityItem it;
      it.size = {3 + (i * 7) % 5, 2 + (i * 5) % 4};
      it.weight = (i * 13) % 9;  // repeated weights force id tie-breaks
      const int nterms = i % 4;  // every 4th item is connectionless
      for (int k = 0; k < nterms; ++k) {
        it.terms.push_back({(i + k * 3) % 11,
                            {(k * 2) % (it.size.x + 1), (k * 3) % (it.size.y + 1)}});
      }
      items.push_back(std::move(it));
    }
    for (const int spacing : {0, 1, 2}) {
      EXPECT_EQ(gravity_place(items, spacing),
                gravity_place_reference(items, spacing))
          << "n=" << n << " spacing=" << spacing;
    }
    if (n == 40) {
      items[5].fixed_pos = geom::Point{30, -10};
      items[17].fixed_pos = geom::Point{-20, 15};
      EXPECT_EQ(gravity_place(items, 1), gravity_place_reference(items, 1));
    }
  }
}

// --- box / partition placement over real layouts --------------------------------

TEST(PlaceBoxes, PartitionHullStartsAtOrigin) {
  const Network net = gen::controller_network();
  std::vector<BoxLayout> boxes;
  for (ModuleId m = 0; m < 4; ++m) {
    boxes.push_back(place_box_modules(net, {m}, 0));
  }
  const PartitionLayout part = place_boxes(net, std::move(boxes), 0);
  geom::Rect hull;
  for (size_t b = 0; b < part.boxes.size(); ++b) {
    hull = hull.hull(geom::Rect::from_size(part.box_pos[b], part.boxes[b].size));
  }
  EXPECT_EQ(hull.lo, (geom::Point{0, 0}));
  EXPECT_EQ(hull.width(), part.size.x);
  EXPECT_EQ(hull.height(), part.size.y);
}

TEST(PlaceBoxes, NoBoxOverlap) {
  const Network net = gen::controller_network();
  std::vector<BoxLayout> boxes;
  for (ModuleId m = 0; m < net.module_count(); ++m) {
    boxes.push_back(place_box_modules(net, {m}, 0));
  }
  const PartitionLayout part = place_boxes(net, std::move(boxes), 0);
  for (size_t a = 0; a < part.boxes.size(); ++a) {
    for (size_t b = a + 1; b < part.boxes.size(); ++b) {
      EXPECT_FALSE(
          geom::Rect::from_size(part.box_pos[a], part.boxes[a].size)
              .overlaps(geom::Rect::from_size(part.box_pos[b], part.boxes[b].size)));
    }
  }
}

TEST(PlacePartitions, NoPartitionOverlapAndTermLookup) {
  const Network net = gen::controller_network();
  std::vector<PartitionLayout> parts;
  for (int half = 0; half < 2; ++half) {
    std::vector<BoxLayout> boxes;
    for (ModuleId m = half * 8; m < (half + 1) * 8; ++m) {
      boxes.push_back(place_box_modules(net, {m}, 0));
    }
    parts.push_back(place_boxes(net, std::move(boxes), 0));
  }
  const FullLayout full = place_partitions(net, std::move(parts), 2);
  ASSERT_EQ(full.partition_pos.size(), 2u);
  EXPECT_FALSE(
      geom::Rect::from_size(full.partition_pos[0], full.partitions[0].size)
          .overlaps(
              geom::Rect::from_size(full.partition_pos[1], full.partitions[1].size)));
  // Terminal lookup resolves through the hierarchy.
  const TermId t = *net.term_by_name(0, "i0");
  EXPECT_NO_THROW(full.term_pos(net, t));
}

// --- terminal placement -----------------------------------------------------------

Network two_port() {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const ModuleId b = lib.instantiate(net, "buf", "b0");
  const TermId in = net.add_system_terminal("x", TermType::In);
  const TermId out = net.add_system_terminal("y", TermType::Out);
  const NetId n0 = net.add_net("n0");
  net.connect(n0, in);
  net.connect(n0, *net.term_by_name(b, "a"));
  const NetId n1 = net.add_net("n1");
  net.connect(n1, *net.term_by_name(b, "y"));
  net.connect(n1, out);
  return net;
}

TEST(TerminalPlace, OnRingAroundPlacement) {
  const Network net = two_port();
  Diagram dia(net);
  dia.place_module(0, {10, 10});
  place_system_terminals(dia);
  const geom::Rect ring = geom::Rect::from_size({10, 10}, {4, 2}).expanded(1);
  for (TermId st : net.system_terms()) {
    ASSERT_TRUE(dia.system_term_placed(st));
    EXPECT_TRUE(ring.on_boundary(dia.term_pos(st)))
        << geom::to_string(dia.term_pos(st));
  }
}

TEST(TerminalPlace, InputLeftOutputRight) {
  const Network net = two_port();
  Diagram dia(net);
  dia.place_module(0, {10, 10});
  place_system_terminals(dia);
  const geom::Point in_pos = dia.term_pos(net.system_terms()[0]);
  const geom::Point out_pos = dia.term_pos(net.system_terms()[1]);
  EXPECT_LT(in_pos.x, out_pos.x);  // rule 4: inputs left, outputs right
}

TEST(TerminalPlace, NoCoincidentTerminals) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  // Many unconnected inputs all gravitating to the same fallback spot.
  for (int i = 0; i < 6; ++i) {
    net.add_system_terminal("t" + std::to_string(i), TermType::In);
  }
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  place_system_terminals(dia);
  for (size_t i = 0; i < net.system_terms().size(); ++i) {
    for (size_t j = i + 1; j < net.system_terms().size(); ++j) {
      EXPECT_NE(dia.term_pos(net.system_terms()[i]),
                dia.term_pos(net.system_terms()[j]));
    }
  }
}

TEST(TerminalPlace, KeepsPreplaced) {
  const Network net = two_port();
  Diagram dia(net);
  dia.place_module(0, {10, 10});
  dia.place_system_term(net.system_terms()[0], {0, 0});
  place_system_terminals(dia);
  EXPECT_EQ(dia.term_pos(net.system_terms()[0]), (geom::Point{0, 0}));
}

}  // namespace
}  // namespace na
