// Tests for the pairwise-exchange placement improver (paper 4.2.1) and the
// wire-length estimator.
#include <gtest/gtest.h>

#include "gen/controller.hpp"
#include "gen/random_net.hpp"
#include "netlist/module_library.hpp"
#include "place/improve.hpp"
#include "place/placer.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

TEST(EstimateWireLength, HalfPerimeter) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  lib.instantiate(net, "buf", "b1");
  const NetId n = net.add_net("n0");
  net.connect(n, *net.term_by_name(0, "y"));   // at (4,1) rel
  net.connect(n, *net.term_by_name(1, "a"));   // at (0,1) rel
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {10, 4});
  // Terminals at (4,1) and (10,5): hpwl = 6 + 4.
  EXPECT_EQ(estimate_wire_length(dia), 10);
}

TEST(EstimateWireLength, IgnoresUnplaced) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  lib.instantiate(net, "buf", "b1");
  const NetId n = net.add_net("n0");
  net.connect(n, *net.term_by_name(0, "y"));
  net.connect(n, *net.term_by_name(1, "a"));
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  EXPECT_EQ(estimate_wire_length(dia), 0);  // single point box
}

TEST(Improve, SwapsObviouslyBadPair) {
  // Two equal-size modules placed so that swapping them shortens the net.
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "src");   // drives far module
  lib.instantiate(net, "buf", "far");
  lib.instantiate(net, "buf", "near");  // unconnected
  const NetId n = net.add_net("n0");
  net.connect(n, *net.term_by_name(0, "y"));
  net.connect(n, *net.term_by_name(1, "a"));
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {40, 0});  // connected but far
  dia.place_module(2, {8, 0});   // unconnected but near
  const ImproveReport r = improve_by_exchange(dia);
  EXPECT_GE(r.swaps, 1);
  EXPECT_LT(r.final_length, r.initial_length);
  // far and near traded places.
  EXPECT_EQ(dia.placed(1).pos, (geom::Point{8, 0}));
  EXPECT_EQ(dia.placed(2).pos, (geom::Point{40, 0}));
}

TEST(Improve, NeverWorsensAndStaysValid) {
  for (unsigned seed : {5u, 6u, 7u}) {
    gen::RandomNetOptions gopt;
    gopt.modules = 12;
    gopt.seed = seed;
    const Network net = gen::random_network(gopt);
    Diagram dia(net);
    PlacerOptions popt;
    popt.max_part_size = 3;
    place(dia, popt);
    const long before = estimate_wire_length(dia);
    const ImproveReport r = improve_by_exchange(dia);
    EXPECT_LE(r.final_length, before);
    EXPECT_EQ(r.initial_length, before);
    EXPECT_TRUE(validate_diagram(dia).empty()) << "seed " << seed;
  }
}

TEST(Improve, RespectsFixedModules) {
  const Network net = gen::controller_network();
  Diagram dia(net);
  place(dia, {});
  const ModuleId ctrl = *net.module_by_name("ctrl");
  const geom::Point pinned = dia.placed(ctrl).pos;
  // Re-mark as fixed, then improve.
  dia.place_module(ctrl, pinned, dia.placed(ctrl).rot, /*fixed=*/true);
  improve_by_exchange(dia);
  EXPECT_EQ(dia.placed(ctrl).pos, pinned);
}

TEST(Improve, TrialBudget) {
  const Network net = gen::controller_network();
  Diagram dia(net);
  place(dia, {});
  ImproveOptions opt;
  opt.max_trials = 5;
  const ImproveReport r = improve_by_exchange(dia, opt);
  EXPECT_LE(r.trials, 6);
}

}  // namespace
}  // namespace na
