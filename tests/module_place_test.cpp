// Unit tests for module placement inside boxes (paper section 4.6.4),
// including the minimum-bend lemma on chain nets.
#include <gtest/gtest.h>

#include "gen/chain.hpp"
#include "netlist/module_library.hpp"
#include "place/module_place.hpp"

namespace na {
namespace {

TEST(Whitespace, Function) {
  // f(k) = k + 1 + extra (Appendix E: "the number of tracks added ...
  // equals the number of connected terminals on that side plus one").
  EXPECT_EQ(whitespace(0, 0), 1);
  EXPECT_EQ(whitespace(3, 0), 4);
  EXPECT_EQ(whitespace(3, 2), 6);
}

Network buf_chain(int n) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  for (int i = 0; i < n; ++i) {
    lib.instantiate(net, "buf", "b" + std::to_string(i));
  }
  for (int i = 0; i + 1 < n; ++i) {
    const NetId nn = net.add_net("n" + std::to_string(i));
    net.connect(nn, *net.term_by_name(i, "y"));
    net.connect(nn, *net.term_by_name(i + 1, "a"));
  }
  return net;
}

TEST(PlaceBoxModules, SingleModule) {
  const Network net = buf_chain(1);
  const BoxLayout l = place_box_modules(net, {0}, 0);
  ASSERT_EQ(l.pos.size(), 1u);
  EXPECT_EQ(l.rot[0], geom::Rot::R0);
  // buf is 4x2 with no connected terminals: f = 1 on every side.
  EXPECT_EQ(l.pos[0], (geom::Point{1, 1}));
  EXPECT_EQ(l.size, (geom::Point{6, 4}));
}

TEST(PlaceBoxModules, ChainRunsLeftToRight) {
  const Network net = buf_chain(4);
  const Box box{0, 1, 2, 3};
  const BoxLayout l = place_box_modules(net, box, 0);
  for (size_t i = 1; i < box.size(); ++i) {
    // Strictly increasing, non-overlapping x ranges.
    EXPECT_GT(l.pos[i].x, l.pos[i - 1].x + 4);
  }
}

TEST(PlaceBoxModules, ChainTerminalsLevel) {
  // The minimum-bend lemma: when successive sides oppose (out right, in
  // left, the buf default), the connecting terminals end up on one track —
  // zero bends.
  const Network net = buf_chain(3);
  const BoxLayout l = place_box_modules(net, {0, 1, 2}, 0);
  const geom::Point y0 = l.term_pos(net, *net.term_by_name(0, "y"));
  const geom::Point a1 = l.term_pos(net, *net.term_by_name(1, "a"));
  const geom::Point y1 = l.term_pos(net, *net.term_by_name(1, "y"));
  const geom::Point a2 = l.term_pos(net, *net.term_by_name(2, "a"));
  EXPECT_EQ(y0.y, a1.y);
  EXPECT_EQ(y1.y, a2.y);
  EXPECT_LT(y0.x, a1.x);
}

TEST(PlaceBoxModules, NoOverlapMixedShapes) {
  const Network net = gen::chain_network({6, false, true});
  Box box(6);
  for (int i = 0; i < 6; ++i) box[i] = i;
  const BoxLayout l = place_box_modules(net, box, 0);
  for (size_t i = 0; i < box.size(); ++i) {
    const geom::Rect ri = geom::Rect::from_size(
        l.pos[i], geom::rotate_size(net.module(box[i]).size, l.rot[i]));
    EXPECT_GE(ri.lo.x, 0);
    EXPECT_GE(ri.lo.y, 0);
    EXPECT_LE(ri.hi.x, l.size.x);
    EXPECT_LE(ri.hi.y, l.size.y);
    for (size_t j = i + 1; j < box.size(); ++j) {
      const geom::Rect rj = geom::Rect::from_size(
          l.pos[j], geom::rotate_size(net.module(box[j]).size, l.rot[j]));
      EXPECT_FALSE(ri.overlaps(rj)) << "modules " << i << " and " << j;
    }
  }
}

TEST(PlaceBoxModules, RotatesInputToTheLeft) {
  // A module whose input sits on the right side must be rotated 180 so the
  // input faces its predecessor.
  Network net;
  const ModuleId a = net.add_module("a", "", {4, 2});
  net.add_terminal(a, "y", TermType::Out, {4, 1});
  const ModuleId b = net.add_module("b", "", {4, 2});
  net.add_terminal(b, "in", TermType::In, {4, 1});  // input on the right!
  const NetId n = net.add_net("n");
  net.connect(n, *net.term_by_name(a, "y"));
  net.connect(n, *net.term_by_name(b, "in"));
  const BoxLayout l = place_box_modules(net, {a, b}, 0);
  EXPECT_EQ(l.rot[1], geom::Rot::R180);
  // And the chain terminals still level out.
  EXPECT_EQ(l.term_pos(net, *net.term_by_name(a, "y")).y,
            l.term_pos(net, *net.term_by_name(b, "in")).y);
}

TEST(PlaceBoxModules, RotatesBottomInputUpright) {
  Network net;
  const ModuleId a = net.add_module("a", "", {4, 2});
  net.add_terminal(a, "y", TermType::Out, {4, 1});
  const ModuleId b = net.add_module("b", "", {4, 2});
  net.add_terminal(b, "in", TermType::In, {2, 0});  // input on the bottom
  const NetId n = net.add_net("n");
  net.connect(n, *net.term_by_name(a, "y"));
  net.connect(n, *net.term_by_name(b, "in"));
  const BoxLayout l = place_box_modules(net, {a, b}, 0);
  // Bottom -> left takes one clockwise step = R270 counter-clockwise...
  // rotate_side(Down, R90) == Right, rotate_side(Down, R270) == Left.
  EXPECT_EQ(l.rot[1], geom::Rot::R270);
}

TEST(PlaceBoxModules, WhitespaceScalesWithTerminals) {
  // dff (2 left terminals) must get more left whitespace than buf (1).
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const ModuleId d = lib.instantiate(net, "dff", "ff");
  const NetId n0 = net.add_net("n0");
  net.connect(n0, *net.term_by_name(d, "d"));
  const NetId n1 = net.add_net("n1");
  net.connect(n1, *net.term_by_name(d, "ck"));
  const NetId n2 = net.add_net("n2");
  net.connect(n2, *net.term_by_name(d, "q"));
  const BoxLayout l = place_box_modules(net, {d}, 0);
  // Left side carries d and ck (2 connected) -> x = f(2) = 3.
  EXPECT_EQ(l.pos[0].x, 3);
  // Bottom has nothing connected -> y = f(0) = 1.
  EXPECT_EQ(l.pos[0].y, 1);
  // Right side carries q and qn(unconnected->ignored): f(1) = 2.
  EXPECT_EQ(l.size.x, 3 + 6 + 2);
}

TEST(PlaceBoxModules, ExtraSpacingApplies) {
  const Network net = buf_chain(2);
  const BoxLayout tight = place_box_modules(net, {0, 1}, 0);
  const BoxLayout wide = place_box_modules(net, {0, 1}, 3);
  EXPECT_GT(wide.size.x, tight.size.x);
  EXPECT_GT(wide.pos[1].x - wide.pos[0].x, tight.pos[1].x - tight.pos[0].x);
}

TEST(BoxLayout, IndexOf) {
  const Network net = buf_chain(3);
  const BoxLayout l = place_box_modules(net, {2, 0}, 0);
  EXPECT_EQ(l.index_of(2), 0);
  EXPECT_EQ(l.index_of(0), 1);
  EXPECT_EQ(l.index_of(1), -1);
}

}  // namespace
}  // namespace na
