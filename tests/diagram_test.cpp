// Unit tests for the diagram model, the metrics, the validity checker and
// the output writers.
#include <gtest/gtest.h>

#include "netlist/module_library.hpp"
#include "schematic/ascii_writer.hpp"
#include "schematic/escher_writer.hpp"
#include "schematic/metrics.hpp"
#include "schematic/svg_writer.hpp"
#include "schematic/validate.hpp"

namespace na {
namespace {

Network pair_net() {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  lib.instantiate(net, "buf", "b1");
  const NetId n = net.add_net("n0");
  net.connect(n, *net.term_by_name(0, "y"));
  net.connect(n, *net.term_by_name(1, "a"));
  return net;
}

TEST(Diagram, PlacementState) {
  const Network net = pair_net();
  Diagram dia(net);
  EXPECT_FALSE(dia.module_placed(0));
  EXPECT_FALSE(dia.all_placed());
  dia.place_module(0, {0, 0});
  dia.place_module(1, {10, 0});
  EXPECT_TRUE(dia.module_placed(0));
  EXPECT_TRUE(dia.all_placed());  // no system terminals
  EXPECT_EQ(dia.module_rect(1), (geom::Rect{{10, 0}, {14, 2}}));
  EXPECT_EQ(dia.placement_bounds(), (geom::Rect{{0, 0}, {14, 2}}));
}

TEST(Diagram, RotatedTerminals) {
  const Network net = pair_net();
  Diagram dia(net);
  // buf: a at (0,1), y at (4,1), size 4x2.
  dia.place_module(0, {0, 0}, geom::Rot::R180);
  EXPECT_EQ(dia.module_size(0), (geom::Point{4, 2}));
  // After 180: y lands at (0,1) relative -> facing left.
  EXPECT_EQ(dia.term_pos(*net.term_by_name(0, "y")), (geom::Point{0, 1}));
  EXPECT_EQ(dia.term_facing(*net.term_by_name(0, "y")), geom::Side::Left);
  dia.place_module(1, {10, 0}, geom::Rot::R90);
  EXPECT_EQ(dia.module_size(1), (geom::Point{2, 4}));
  // a at (0,1) -> R90 -> (size.y - 1, 0) = (1, 0), facing down.
  EXPECT_EQ(dia.term_pos(*net.term_by_name(1, "a")), (geom::Point{11, 0}));
  EXPECT_EQ(dia.term_facing(*net.term_by_name(1, "a")), geom::Side::Down);
}

TEST(Diagram, SystemTerminals) {
  Network net;
  const TermId st = net.add_system_terminal("x", TermType::In);
  Diagram dia(net);
  EXPECT_FALSE(dia.system_term_placed(st));
  EXPECT_THROW(dia.term_pos(st), std::logic_error);
  dia.place_system_term(st, {5, 5});
  EXPECT_EQ(dia.term_pos(st), (geom::Point{5, 5}));
  EXPECT_THROW(dia.term_facing(st), std::logic_error);
}

TEST(Diagram, TranslateAndNormalize) {
  const Network net = pair_net();
  Diagram dia(net);
  dia.place_module(0, {5, 7});
  dia.place_module(1, {15, 7});
  dia.add_polyline(0, {{9, 8}, {15, 8}});
  dia.translate({-5, -7});
  EXPECT_EQ(dia.placed(0).pos, (geom::Point{0, 0}));
  EXPECT_EQ(dia.route(0).polylines[0][0], (geom::Point{4, 1}));
  dia.translate({3, 3});
  dia.normalize();
  EXPECT_EQ(dia.placement_bounds().lo, (geom::Point{0, 0}));
}

TEST(NetRoute, LengthAndBends) {
  NetRoute r;
  r.polylines.push_back({{0, 0}, {5, 0}, {5, 3}, {2, 3}});
  EXPECT_EQ(r.total_length(), 11);
  EXPECT_EQ(r.bend_count(), 2);
  r.polylines.push_back({{3, 3}, {3, 6}});
  EXPECT_EQ(r.total_length(), 14);
  EXPECT_EQ(r.bend_count(), 2);
}

TEST(Metrics, CountsCrossingsAndBranches) {
  const Network net = pair_net();
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {20, 0});
  // Net 0 as an L; add an extra net crossing it (not electrically present —
  // metrics work from geometry, so draw it on net 0's route list... use a
  // second network instead).
  Network net2;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net2, "buf", "b0");
  const NetId a = net2.add_net("a");
  const NetId b = net2.add_net("b");
  (void)a;
  (void)b;
  Diagram d2(net2);
  d2.place_module(0, {0, 0});
  d2.add_polyline(a, {{6, 0}, {12, 0}, {12, 6}});   // corner at (12,0)
  d2.add_polyline(b, {{9, -3}, {9, 3}});            // crosses a's horizontal
  const DiagramStats s = compute_stats(d2);
  EXPECT_EQ(s.crossings, 1);
  EXPECT_EQ(s.bends, 1);
  EXPECT_EQ(s.wire_length, 18);
  EXPECT_EQ(s.branch_points, 0);
}

TEST(Metrics, BranchPoints) {
  Network net;
  const NetId n = net.add_net("n");
  (void)n;
  net.add_module("m", "", {2, 2});
  Diagram dia(net);
  dia.place_module(0, {100, 100});  // far away
  dia.add_polyline(0, {{0, 0}, {10, 0}});
  dia.add_polyline(0, {{5, 5}, {5, 0}});  // T-junction at (5,0)
  const DiagramStats s = compute_stats(dia);
  EXPECT_EQ(s.branch_points, 1);
  EXPECT_EQ(s.crossings, 0);  // same net: no crossing
}

TEST(Metrics, FlowViolations) {
  Network net;
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  lib.instantiate(net, "buf", "b0");
  lib.instantiate(net, "buf", "b1");
  const NetId n = net.add_net("n0");
  net.connect(n, *net.term_by_name(0, "y"));
  net.connect(n, *net.term_by_name(1, "a"));
  Diagram dia(net);
  // Driver right of sink: one violation.
  dia.place_module(0, {20, 0});
  dia.place_module(1, {0, 0});
  EXPECT_EQ(flow_violations(dia), 1);
  // Flip: none.
  Diagram dia2(net);
  dia2.place_module(0, {0, 0});
  dia2.place_module(1, {20, 0});
  EXPECT_EQ(flow_violations(dia2), 0);
}

// --- validator ----------------------------------------------------------------

Diagram routed_pair(const Network& net) {
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {10, 0});
  dia.add_polyline(0, {{4, 1}, {10, 1}});
  dia.route(0).routed = true;
  return dia;
}

TEST(Validate, AcceptsGoodDiagram) {
  const Network net = pair_net();
  const Diagram dia = routed_pair(net);
  EXPECT_TRUE(validate_diagram(dia, true).empty());
}

TEST(Validate, DetectsUnplaced) {
  const Network net = pair_net();
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  EXPECT_FALSE(validate_diagram(dia).empty());
}

TEST(Validate, DetectsModuleOverlap) {
  const Network net = pair_net();
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {3, 1});
  const auto problems = validate_diagram(dia);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("overlap"), std::string::npos);
}

TEST(Validate, DetectsNetThroughModule) {
  const Network net = pair_net();
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {10, 0});
  dia.add_polyline(0, {{4, 1}, {12, 1}});  // ends inside module b1
  dia.route(0).routed = true;
  const auto problems = validate_diagram(dia);
  EXPECT_FALSE(problems.empty());
}

TEST(Validate, DetectsNetOverlap) {
  Network net;
  net.add_module("m", "", {2, 2});
  net.add_net("a");
  net.add_net("b");
  Diagram dia(net);
  dia.place_module(0, {50, 50});
  dia.add_polyline(0, {{0, 0}, {10, 0}});
  dia.add_polyline(1, {{5, 0}, {8, 0}});
  const auto problems = validate_diagram(dia);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("overlap"), std::string::npos);
}

TEST(Validate, AllowsPerpendicularCrossing) {
  Network net;
  net.add_module("m", "", {2, 2});
  net.add_net("a");
  net.add_net("b");
  Diagram dia(net);
  dia.place_module(0, {50, 50});
  dia.add_polyline(0, {{0, 5}, {10, 5}});
  dia.add_polyline(1, {{5, 0}, {5, 10}});
  EXPECT_TRUE(validate_diagram(dia).empty());
}

TEST(Validate, RejectsCrossingAtCorner) {
  Network net;
  net.add_module("m", "", {2, 2});
  net.add_net("a");
  net.add_net("b");
  Diagram dia(net);
  dia.place_module(0, {50, 50});
  dia.add_polyline(0, {{0, 5}, {5, 5}, {5, 10}});  // corner at (5,5)
  dia.add_polyline(1, {{5, 0}, {5, 5}});           // endpoint touches the corner
  EXPECT_FALSE(validate_diagram(dia).empty());
}

TEST(Validate, DetectsDisconnectedNet) {
  const Network net = pair_net();
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {10, 0});
  dia.add_polyline(0, {{4, 1}, {6, 1}});
  dia.add_polyline(0, {{8, 1}, {10, 1}});  // gap between 6 and 8
  dia.route(0).routed = true;
  const auto problems = validate_diagram(dia);
  EXPECT_FALSE(problems.empty());
}

TEST(Validate, DetectsMissedTerminal) {
  const Network net = pair_net();
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {10, 0});
  dia.add_polyline(0, {{4, 1}, {9, 1}});  // stops short of b1.a
  dia.route(0).routed = true;
  const auto problems = validate_diagram(dia, true);
  EXPECT_FALSE(problems.empty());
}

TEST(Validate, RequireAllRoutedFlag) {
  const Network net = pair_net();
  Diagram dia(net);
  dia.place_module(0, {0, 0});
  dia.place_module(1, {10, 0});
  EXPECT_TRUE(validate_diagram(dia, false).empty());
  EXPECT_FALSE(validate_diagram(dia, true).empty());
}

// --- writers --------------------------------------------------------------------

TEST(Writers, Svg) {
  const Network net = pair_net();
  const Diagram dia = routed_pair(net);
  const std::string svg = to_svg(dia);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("b0"), std::string::npos);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_NE(svg.find("n0"), std::string::npos);
}

TEST(Writers, Ascii) {
  const Network net = pair_net();
  const Diagram dia = routed_pair(net);
  const std::string art = to_ascii(dia);
  EXPECT_NE(art.find('+'), std::string::npos);   // module corners
  EXPECT_NE(art.find('-'), std::string::npos);   // wire or edge
  EXPECT_NE(art.find('o'), std::string::npos);   // terminals
  EXPECT_NE(art.find("b0"), std::string::npos);  // instance name
  EXPECT_EQ(to_ascii(Diagram(net)), "(empty diagram)\n");
}

TEST(Writers, AsciiMarksCrossings) {
  Network net;
  net.add_module("m", "", {2, 2});
  net.add_net("a");
  net.add_net("b");
  Diagram dia(net);
  dia.place_module(0, {50, 50});
  dia.add_polyline(0, {{0, 5}, {10, 5}});
  dia.add_polyline(1, {{5, 0}, {5, 10}});
  EXPECT_NE(to_ascii(dia).find('#'), std::string::npos);
}

TEST(Writers, EscherTemplate) {
  const ModuleLibrary lib = ModuleLibrary::standard_cells();
  const std::string es = to_escher_template(*lib.find("and2"));
  EXPECT_EQ(es.find("#TUE-ES-871"), 0u);
  EXPECT_NE(es.find("tname: and2"), std::string::npos);
  EXPECT_NE(es.find("cname: a"), std::string::npos);
  EXPECT_NE(es.find("contents: 0 0"), std::string::npos);
}

TEST(Writers, EscherDiagram) {
  const Network net = pair_net();
  const Diagram dia = routed_pair(net);
  const std::string es = to_escher_diagram(dia, "top");
  EXPECT_EQ(es.find("#TUE-ES-871"), 0u);
  EXPECT_NE(es.find("instname: b0"), std::string::npos);
  EXPECT_NE(es.find("tempname: buf"), std::string::npos);
  EXPECT_NE(es.find("node:"), std::string::npos);
  EXPECT_NE(es.find("oname: n0"), std::string::npos);
}

}  // namespace
}  // namespace na

#include "schematic/eps_writer.hpp"

namespace na {
namespace {

TEST(Writers, Eps) {
  const Network net = pair_net();
  const Diagram dia = routed_pair(net);
  const std::string eps = to_eps(dia);
  EXPECT_EQ(eps.find("%!PS-Adobe-3.0 EPSF-3.0"), 0u);
  EXPECT_NE(eps.find("%%BoundingBox:"), std::string::npos);
  EXPECT_NE(eps.find("(b0)"), std::string::npos);  // module label
  EXPECT_NE(eps.find("closepath s"), std::string::npos);
  EXPECT_NE(eps.find("%%EOF"), std::string::npos);
}

TEST(Writers, EpsEmptyDiagramStillWellFormed) {
  Network net;
  Diagram dia(net);
  const std::string eps = to_eps(dia);
  EXPECT_EQ(eps.find("%!PS"), 0u);
  EXPECT_NE(eps.find("%%EOF"), std::string::npos);
}

}  // namespace
}  // namespace na
