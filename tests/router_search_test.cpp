// Unit tests for the single-connection search engines: line expansion
// (min bends -> crossings -> length), Lee (min length), Hightower
// (escape-line heuristic) and the straight-line fast path.
#include <gtest/gtest.h>

#include "route/router.hpp"

namespace na {
namespace {

RoutingGrid open_grid(int size = 20) {
  return RoutingGrid({{0, 0}, {size, size}});
}

SearchProblem p2p(NetId net, geom::Point from, std::optional<geom::Dir> from_dir,
                  geom::Point to, std::optional<geom::Dir> to_facing) {
  SearchProblem p;
  p.net = net;
  p.starts = {{from, from_dir}};
  p.target = SearchTarget{to, to_facing};
  return p;
}

[[maybe_unused]] int bends_of(const std::vector<geom::Point>& path) {
  return static_cast<int>(path.size()) - 2;  // corner list: inner points
}

/// Validates that a path is orthogonal and runs start -> end.
void expect_path_ok(const SearchResult& r, geom::Point from, geom::Point to) {
  ASSERT_GE(r.path.size(), 2u);
  EXPECT_EQ(r.path.front(), from);
  EXPECT_EQ(r.path.back(), to);
  for (size_t i = 1; i < r.path.size(); ++i) {
    const geom::Point a = r.path[i - 1];
    const geom::Point b = r.path[i];
    EXPECT_TRUE(a.x == b.x || a.y == b.y) << "diagonal segment";
  }
}

TEST(LineExpansion, StraightConnection) {
  const RoutingGrid g = open_grid();
  const auto r = line_expansion_search(g, p2p(0, {2, 5}, geom::Dir::Right, {15, 5},
                                              geom::Dir::Left));
  ASSERT_TRUE(r.has_value());
  expect_path_ok(*r, {2, 5}, {15, 5});
  EXPECT_EQ(r->cost.bends, 0);
  EXPECT_EQ(r->cost.length, 13);
  EXPECT_EQ(r->cost.crossings, 0);
}

TEST(LineExpansion, OneBend) {
  const RoutingGrid g = open_grid();
  const auto r = line_expansion_search(g, p2p(0, {2, 2}, geom::Dir::Right, {10, 10},
                                              geom::Dir::Down));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cost.bends, 1);
  EXPECT_EQ(r->cost.length, 16);
}

TEST(LineExpansion, MinimumBendsAroundObstacle) {
  RoutingGrid g = open_grid();
  g.block_rect({{8, 0}, {10, 12}});  // wall with gap above y=12
  const auto r = line_expansion_search(g, p2p(0, {2, 5}, geom::Dir::Right, {16, 5},
                                              geom::Dir::Left));
  ASSERT_TRUE(r.has_value());
  // Over the wall and back to the entry row, arriving rightward into the
  // target: up, across, down, right again = 4 bends, and no cheaper route
  // exists (the wall spans the whole lower plane).
  EXPECT_EQ(r->cost.bends, 4);
  expect_path_ok(*r, {2, 5}, {16, 5});
  // Without any direction constraints the detour needs only 2 bends
  // (up, across, down into the target from above).
  const auto free_entry = line_expansion_search(
      g, p2p(0, {2, 5}, std::nullopt, {16, 5}, std::nullopt));
  ASSERT_TRUE(free_entry.has_value());
  EXPECT_EQ(free_entry->cost.bends, 2);
}

TEST(LineExpansion, GuaranteedThroughMaze) {
  // A spiral maze: only one tortuous way through.
  RoutingGrid g = open_grid(12);
  g.block_rect({{2, 2}, {2, 10}});
  g.block_rect({{2, 10}, {9, 10}});
  g.block_rect({{9, 4}, {9, 10}});
  g.block_rect({{4, 4}, {9, 4}});
  g.block_rect({{4, 4}, {4, 8}});
  const auto r = line_expansion_search(g, p2p(0, {0, 0}, std::nullopt, {6, 6},
                                              std::nullopt));
  ASSERT_TRUE(r.has_value());
  expect_path_ok(*r, {0, 0}, {6, 6});
  // Lee agrees on reachability.
  const auto lee = lee_search(g, p2p(0, {0, 0}, std::nullopt, {6, 6}, std::nullopt));
  ASSERT_TRUE(lee.has_value());
}

TEST(LineExpansion, NoPathReturnsNullopt) {
  RoutingGrid g = open_grid(10);
  g.block_rect({{5, 0}, {5, 10}});  // full wall
  EXPECT_FALSE(line_expansion_search(
                   g, p2p(0, {2, 5}, std::nullopt, {8, 5}, std::nullopt))
                   .has_value());
}

TEST(LineExpansion, PrefersFewerCrossingsAmongMinBend) {
  // Two 1-bend corridors: one crosses a foreign net, the other is longer
  // but crossing-free.  Default order must pick the crossing-free one;
  // BendsLengthCrossings must pick the shorter one.
  RoutingGrid g = open_grid(20);
  // Foreign net bars the y range 0..10 at x=10 — any path through x=10
  // below y=11 crosses it.
  const geom::Point foreign[] = {{10, 0}, {10, 10}};
  g.occupy_polyline(7, foreign);
  // Start (5,5) going right, target (15,5) entered from the right side —
  // min-bend is 0 bends straight through the foreign net (1 crossing), or
  // 2 bends around above (0 crossings).  With 0 bends strictly better, the
  // straight path wins under both orders; so instead force 2 bends:
  // target faces up, so the path must arrive downward.
  // Minimum-bend shape is right/up/right/down (3 bends) for any route: the
  // choice left is *where* the climb happens.  Climbing past y=10 clears
  // the foreign net (longer, 0 crossings); staying low crosses it once
  // (shorter).
  const auto def = line_expansion_search(
      g, p2p(0, {5, 5}, geom::Dir::Right, {15, 5}, geom::Dir::Up));
  ASSERT_TRUE(def.has_value());
  EXPECT_EQ(def->cost.bends, 3);

  SearchProblem swapped = p2p(0, {5, 5}, geom::Dir::Right, {15, 5}, geom::Dir::Up);
  swapped.order = CostOrder::BendsLengthCrossings;
  const auto alt = line_expansion_search(g, swapped);
  ASSERT_TRUE(alt.has_value());
  EXPECT_EQ(alt->cost.bends, 3);
  // Under the default order crossings are minimised first; under -s the
  // length is.  The crossing-free 1-bend route must climb above y=10 first
  // (bend at (15, y>10)) and is therefore longer.
  EXPECT_LE(def->cost.crossings, alt->cost.crossings);
  EXPECT_LE(alt->cost.length, def->cost.length);
  EXPECT_EQ(def->cost.crossings, 0);
  EXPECT_EQ(alt->cost.crossings, 1);
}

TEST(LineExpansion, CannotOverlapForeignNet) {
  RoutingGrid g = open_grid(10);
  const geom::Point foreign[] = {{0, 5}, {10, 5}};
  g.occupy_polyline(7, foreign);
  // Start and target on the occupied track: the path must leave the track,
  // since running along it would overlap net 7.
  const auto r =
      line_expansion_search(g, p2p(0, {2, 5}, std::nullopt, {8, 5}, std::nullopt));
  EXPECT_FALSE(r.has_value());  // both endpoints sit *on* the foreign track
}

TEST(LineExpansion, CrossesForeignNetPerpendicularly) {
  RoutingGrid g = open_grid(10);
  const geom::Point foreign[] = {{5, 0}, {5, 10}};
  g.occupy_polyline(7, foreign);
  const auto r = line_expansion_search(
      g, p2p(0, {2, 5}, geom::Dir::Right, {8, 5}, geom::Dir::Left));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cost.bends, 0);
  EXPECT_EQ(r->cost.crossings, 1);
}

TEST(LineExpansion, TurnBlockedOnForeignTrack) {
  RoutingGrid g = open_grid(10);
  const geom::Point foreign[] = {{0, 5}, {10, 5}};
  g.occupy_polyline(7, foreign);
  // From (2,2) to (2,8): a straight vertical line crosses the foreign
  // horizontal net at (2,5) — fine.  But force a detour ending at x=8:
  const auto r = line_expansion_search(
      g, p2p(0, {2, 2}, geom::Dir::Up, {8, 8}, geom::Dir::Down));
  ASSERT_TRUE(r.has_value());
  // No corner may sit on y=5; verify by checking corner points.
  for (size_t i = 1; i + 1 < r->path.size(); ++i) {
    EXPECT_NE(r->path[i].y, 5) << "corner on the foreign track";
  }
}

TEST(LineExpansion, JoinOwnNet) {
  RoutingGrid g = open_grid(10);
  const geom::Point own[] = {{2, 8}, {8, 8}};
  g.occupy_polyline(0, own);
  SearchProblem p;
  p.net = 0;
  p.starts = {{{5, 2}, geom::Dir::Up}};
  p.join_own_net = true;
  const auto r = line_expansion_search(g, p);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->path.back(), (geom::Point{5, 8}));
  EXPECT_EQ(r->cost.bends, 0);
}

TEST(LineExpansion, ForcedStartDirection) {
  RoutingGrid g = open_grid(10);
  // Start exits right only; target directly left of it.
  const auto r = line_expansion_search(
      g, p2p(0, {5, 5}, geom::Dir::Right, {1, 5}, geom::Dir::Right));
  ASSERT_TRUE(r.has_value());
  // Must loop around: > 0 bends even though the points share a row.
  EXPECT_GT(r->cost.bends, 0);
}

TEST(LineExpansion, RespectsClaims) {
  RoutingGrid g = open_grid(10);
  g.set_claim({5, 5}, 9);
  const auto blocked = line_expansion_search(
      g, p2p(0, {5, 2}, geom::Dir::Up, {5, 8}, geom::Dir::Down));
  ASSERT_TRUE(blocked.has_value());
  EXPECT_GT(blocked->cost.bends, 0);  // had to dodge the claim
  const auto owner = line_expansion_search(
      g, p2p(9, {5, 2}, geom::Dir::Up, {5, 8}, geom::Dir::Down));
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->cost.bends, 0);  // the claim owner sails through
}

TEST(LineExpansion, ExpansionBudget) {
  RoutingGrid g = open_grid(30);
  SearchProblem p = p2p(0, {0, 0}, std::nullopt, {30, 30}, std::nullopt);
  p.max_expansions = 3;
  EXPECT_FALSE(line_expansion_search(g, p).has_value());
}

// --- Lee ------------------------------------------------------------------------

TEST(Lee, MinimumLength) {
  RoutingGrid g = open_grid();
  const auto r =
      lee_search(g, p2p(0, {2, 2}, std::nullopt, {10, 7}, std::nullopt));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cost.length, 13);  // Manhattan distance
}

TEST(Lee, MinLengthThroughGap) {
  RoutingGrid g = open_grid(12);
  g.block_rect({{6, 0}, {6, 8}});  // wall with gap above y=8
  const auto r = lee_search(g, p2p(0, {2, 2}, std::nullopt, {10, 2}, std::nullopt));
  ASSERT_TRUE(r.has_value());
  // Shortest detour: up to y=9, across, down: 8 + 7 + 7 = 22.
  EXPECT_EQ(r->cost.length, 22);
}

TEST(Lee, LineExpansionNeverBeatsLeeOnExistence) {
  // On a batch of random obstacle fields, line expansion must succeed
  // exactly when Lee does (both are complete).
  for (unsigned seed = 0; seed < 12; ++seed) {
    RoutingGrid g = open_grid(16);
    unsigned state = seed * 2654435761u + 1;
    auto rnd = [&]() { return state = state * 1664525u + 1013904223u; };
    for (int i = 0; i < 10; ++i) {
      const int x = static_cast<int>(rnd() % 13) + 1;
      const int y = static_cast<int>(rnd() % 13) + 1;
      g.block_rect({{x, y}, {x + static_cast<int>(rnd() % 3), y + static_cast<int>(rnd() % 3)}});
    }
    const SearchProblem p = p2p(0, {0, 0}, std::nullopt, {16, 16}, std::nullopt);
    const bool lee_ok = lee_search(g, p).has_value();
    const bool lx_ok = line_expansion_search(g, p).has_value();
    EXPECT_EQ(lee_ok, lx_ok) << "seed " << seed;
  }
}

// --- straight line -----------------------------------------------------------

TEST(StraightLine, Works) {
  const RoutingGrid g = open_grid();
  const auto r = straight_line(g, 0, {{2, 5}, geom::Dir::Right},
                               {{15, 5}, geom::Dir::Left});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->path, (std::vector<geom::Point>{{2, 5}, {15, 5}}));
  EXPECT_EQ(r->cost.bends, 0);
}

TEST(StraightLine, RejectsMisalignment) {
  const RoutingGrid g = open_grid();
  EXPECT_FALSE(straight_line(g, 0, {{2, 5}, geom::Dir::Right},
                             {{15, 6}, geom::Dir::Left})
                   .has_value());
}

TEST(StraightLine, RejectsWrongSides) {
  const RoutingGrid g = open_grid();
  // Target's outward side points away from the start: unreachable straight.
  EXPECT_FALSE(straight_line(g, 0, {{2, 5}, geom::Dir::Right},
                             {{15, 5}, geom::Dir::Right})
                   .has_value());
  // Start exits the wrong way.
  EXPECT_FALSE(straight_line(g, 0, {{2, 5}, geom::Dir::Left},
                             {{15, 5}, geom::Dir::Left})
                   .has_value());
}

TEST(StraightLine, BlockedByModule) {
  RoutingGrid g = open_grid();
  g.block({8, 5});
  EXPECT_FALSE(straight_line(g, 0, {{2, 5}, geom::Dir::Right},
                             {{15, 5}, geom::Dir::Left})
                   .has_value());
}

TEST(StraightLine, CrossesForeignNets) {
  RoutingGrid g = open_grid();
  const geom::Point foreign[] = {{8, 0}, {8, 10}};
  g.occupy_polyline(7, foreign);
  const auto r = straight_line(g, 0, {{2, 5}, geom::Dir::Right},
                               {{15, 5}, geom::Dir::Left});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cost.crossings, 1);
}

TEST(StraightLine, BlockedByForeignCorner) {
  RoutingGrid g = open_grid();
  const geom::Point foreign[] = {{8, 0}, {8, 5}, {12, 5}};  // corner at (8,5)
  g.occupy_polyline(7, foreign);
  EXPECT_FALSE(straight_line(g, 0, {{2, 5}, geom::Dir::Right},
                             {{15, 5}, geom::Dir::Left})
                   .has_value());
}

TEST(StraightLine, SystemTerminalAnyDirection) {
  const RoutingGrid g = open_grid();
  const auto r = straight_line(g, 0, {{2, 5}, std::nullopt}, {{15, 5}, std::nullopt});
  ASSERT_TRUE(r.has_value());
}

// --- Hightower ------------------------------------------------------------------

TEST(Hightower, StraightConnection) {
  const RoutingGrid g = open_grid();
  const auto r = hightower_search(g, p2p(0, {2, 5}, geom::Dir::Right, {15, 5},
                                         geom::Dir::Left));
  ASSERT_TRUE(r.has_value());
  expect_path_ok(*r, {2, 5}, {15, 5});
}

TEST(Hightower, SimpleDetour) {
  RoutingGrid g = open_grid();
  g.block_rect({{8, 0}, {10, 12}});
  const auto r = hightower_search(g, p2p(0, {2, 5}, geom::Dir::Right, {16, 5},
                                         geom::Dir::Left));
  ASSERT_TRUE(r.has_value());
  expect_path_ok(*r, {2, 5}, {16, 5});
}

TEST(Hightower, PathIsGeometricallyLegal) {
  RoutingGrid g = open_grid();
  g.block_rect({{6, 2}, {8, 18}});
  g.block_rect({{12, 0}, {14, 15}});
  const auto r = hightower_search(g, p2p(0, {2, 10}, geom::Dir::Right, {18, 10},
                                         geom::Dir::Left));
  if (r) {
    // When the heuristic finds a path, it must be orthogonal and committable.
    expect_path_ok(*r, {2, 10}, {18, 10});
    RoutingGrid g2 = open_grid();
    g2.block_rect({{6, 2}, {8, 18}});
    g2.block_rect({{12, 0}, {14, 15}});
    EXPECT_NO_THROW(g2.occupy_polyline(0, r->path));
  }
}

TEST(Hightower, NoPathOnWall) {
  RoutingGrid g = open_grid(10);
  g.block_rect({{5, 0}, {5, 10}});
  EXPECT_FALSE(hightower_search(
                   g, p2p(0, {2, 5}, std::nullopt, {8, 5}, std::nullopt))
                   .has_value());
}

TEST(FindPath, Dispatch) {
  const RoutingGrid g = open_grid();
  const SearchProblem p = p2p(0, {2, 5}, std::nullopt, {15, 5}, std::nullopt);
  EXPECT_TRUE(find_path(Engine::LineExpansion, g, p).has_value());
  EXPECT_TRUE(find_path(Engine::Lee, g, p).has_value());
  EXPECT_TRUE(find_path(Engine::Hightower, g, p).has_value());
}

}  // namespace
}  // namespace na
