// Unit tests for box formation (CONSTRUCT_ROOTS / LONGEST_PATH /
// BOX_FORMATION, paper section 4.6.3).
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/chain.hpp"
#include "gen/random_net.hpp"
#include "place/boxes.hpp"

namespace na {
namespace {

/// m0 -> m1 -> m2 -> m3 chain plus a side branch m1 -> m4.
Network chain_with_branch() {
  Network net;
  for (int i = 0; i < 5; ++i) {
    const ModuleId m = net.add_module("m" + std::to_string(i), "", {4, 4});
    net.add_terminal(m, "a", TermType::In, {0, 1});
    net.add_terminal(m, "y", TermType::Out, {4, 1});
    net.add_terminal(m, "z", TermType::Out, {4, 3});
  }
  auto t = [&](ModuleId m, const char* n) { return *net.term_by_name(m, n); };
  auto wire = [&](const char* name, TermId a, TermId b) {
    const NetId n = net.add_net(name);
    net.connect(n, a);
    net.connect(n, b);
  };
  wire("n01", t(0, "y"), t(1, "a"));
  wire("n12", t(1, "y"), t(2, "a"));
  wire("n23", t(2, "y"), t(3, "a"));
  wire("n14", t(1, "z"), t(4, "a"));
  return net;
}

TEST(DrivesModule, Direction) {
  const Network net = chain_with_branch();
  EXPECT_TRUE(drives_module(net, 0, 1));
  EXPECT_FALSE(drives_module(net, 1, 0));
  EXPECT_TRUE(drives_module(net, 1, 4));
  EXPECT_FALSE(drives_module(net, 0, 2));
  EXPECT_FALSE(drives_module(net, 0, 0));
}

TEST(ConstructRoots, ExternalConnectionMakesRoot) {
  const Network net = chain_with_branch();
  // Partition {1,2}: both touch modules outside it.
  const auto roots = construct_roots(net, {1, 2});
  EXPECT_EQ(roots.size(), 2u);
}

TEST(ConstructRoots, SystemInputMakesRoot) {
  Network net;
  const ModuleId a = net.add_module("a", "", {4, 2});
  const ModuleId b = net.add_module("b", "", {4, 2});
  const TermId ta = net.add_terminal(a, "in", TermType::In, {0, 1});
  const TermId tay = net.add_terminal(a, "y", TermType::Out, {4, 1});
  const TermId tb = net.add_terminal(b, "in", TermType::In, {0, 1});
  net.add_terminal(b, "y", TermType::Out, {4, 1});
  const TermId st = net.add_system_terminal("x", TermType::In);
  const NetId n0 = net.add_net("n0");
  net.connect(n0, st);
  net.connect(n0, ta);
  const NetId n1 = net.add_net("n1");
  net.connect(n1, tay);
  net.connect(n1, tb);
  const auto roots = construct_roots(net, {a, b});
  // a: driven by a system input -> root.  b: exactly one net to other
  // modules -> root by the single-net rule.
  EXPECT_NE(std::find(roots.begin(), roots.end(), a), roots.end());
  EXPECT_NE(std::find(roots.begin(), roots.end(), b), roots.end());
}

TEST(ConstructRoots, SingleNetRule) {
  const Network net = chain_with_branch();
  // Whole network as one partition: m0 has one net to others -> root;
  // m4 and m3 too; m1 has three nets, m2 two -> not roots.
  const auto roots = construct_roots(net, {0, 1, 2, 3, 4});
  auto has = [&](ModuleId m) {
    return std::find(roots.begin(), roots.end(), m) != roots.end();
  };
  EXPECT_TRUE(has(0));
  EXPECT_TRUE(has(3));
  EXPECT_TRUE(has(4));
  EXPECT_FALSE(has(1));
  EXPECT_FALSE(has(2));
}

TEST(LongestPath, FollowsChain) {
  const Network net = chain_with_branch();
  const std::vector<bool> avail(5, true);
  const Box path = longest_path(net, 0, avail, 10);
  EXPECT_EQ(path, (Box{0, 1, 2, 3}));
}

TEST(LongestPath, RespectsBoxSizeLimit) {
  const Network net = chain_with_branch();
  const std::vector<bool> avail(5, true);
  EXPECT_EQ(longest_path(net, 0, avail, 2).size(), 2u);
  EXPECT_EQ(longest_path(net, 0, avail, 1).size(), 1u);
}

TEST(LongestPath, RespectsAvailability) {
  const Network net = chain_with_branch();
  std::vector<bool> avail(5, true);
  avail[2] = false;
  const Box path = longest_path(net, 0, avail, 10);
  // Chain broken at m2: 0 -> 1 -> 4 (the branch).
  EXPECT_EQ(path, (Box{0, 1, 4}));
}

TEST(LongestPath, HandlesCyclesWithoutRevisiting) {
  Network net;
  for (int i = 0; i < 3; ++i) {
    const ModuleId m = net.add_module("m" + std::to_string(i), "", {4, 2});
    net.add_terminal(m, "a", TermType::In, {0, 1});
    net.add_terminal(m, "y", TermType::Out, {4, 1});
  }
  auto wire = [&](const char* name, ModuleId f, ModuleId t) {
    const NetId n = net.add_net(name);
    net.connect(n, *net.term_by_name(f, "y"));
    net.connect(n, *net.term_by_name(t, "a"));
  };
  wire("n0", 0, 1);
  wire("n1", 1, 2);
  wire("n2", 2, 0);  // cycle
  const Box path = longest_path(net, 0, std::vector<bool>(3, true), 10);
  EXPECT_EQ(path.size(), 3u);  // each module once
}

TEST(FormBoxes, DisjointCover) {
  for (unsigned seed : {3u, 9u}) {
    gen::RandomNetOptions opt;
    opt.modules = 14;
    opt.seed = seed;
    const Network net = gen::random_network(opt);
    std::vector<ModuleId> all(net.module_count());
    for (int i = 0; i < net.module_count(); ++i) all[i] = i;
    for (int max_box : {1, 3, 7}) {
      const auto boxes = form_boxes(net, all, max_box);
      std::vector<int> seen(net.module_count(), 0);
      for (const Box& b : boxes) {
        EXPECT_FALSE(b.empty());
        EXPECT_LE(static_cast<int>(b.size()), max_box);
        for (ModuleId m : b) seen[m]++;
        // Every consecutive pair is a drive edge (string property).
        for (size_t i = 1; i < b.size(); ++i) {
          EXPECT_TRUE(drives_module(net, b[i - 1], b[i]));
        }
      }
      for (int m = 0; m < net.module_count(); ++m) EXPECT_EQ(seen[m], 1);
    }
  }
}

TEST(FormBoxes, ChainBecomesOneBox) {
  const Network net = gen::chain_network({6, false, true});
  std::vector<ModuleId> all(net.module_count());
  for (int i = 0; i < net.module_count(); ++i) all[i] = i;
  const auto boxes = form_boxes(net, all, 7);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].size(), 6u);
}

TEST(FormBoxes, BoxSizeOneYieldsSingletons) {
  const Network net = chain_with_branch();
  const auto boxes = form_boxes(net, {0, 1, 2, 3, 4}, 1);
  EXPECT_EQ(boxes.size(), 5u);
}

}  // namespace
}  // namespace na
